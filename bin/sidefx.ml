(* sidefx — command-line driver for the Cooper–Kennedy side-effect
   analysis library.

     sidefx analyze FILE        full MOD/USE report for a MiniProc file
     sidefx sections FILE       regular-section (§6) report
     sidefx stats FILE          call / binding multi-graph statistics
     sidefx gen [...]           emit a random MiniProc program
     sidefx bench-table [...]   empirical-linearity operation counts *)

open Cmdliner

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let load path =
  match Frontend.Sema.compile ~file:path (read_file path) with
  | Ok prog -> prog
  | Error errs ->
    Format.eprintf "@[<v>%a@]@."
      (Format.pp_print_list ~pp_sep:Format.pp_print_newline Frontend.Sema.pp_error)
      errs;
    exit 1

let load_with_locs path =
  match Frontend.Sema.compile_with_locs ~file:path (read_file path) with
  | Ok pair -> pair
  | Error errs ->
    Format.eprintf "@[<v>%a@]@."
      (Format.pp_print_list ~pp_sep:Format.pp_print_newline Frontend.Sema.pp_error)
      errs;
    exit 1

let file_arg =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE" ~doc:"MiniProc source file.")

(* --- observability plumbing (shared --trace / --json flag pair) --- *)

let trace_arg =
  Arg.(value & flag
       & info [ "trace" ]
           ~doc:
             "Record per-phase tracing spans (wall time + operation-counter \
              deltas) and print the phase table to stderr on exit.")

let json_arg =
  Arg.(value & flag
       & info [ "json" ] ~doc:"Emit machine-readable JSON on stdout instead of text.")

let jobs_arg =
  Arg.(value & opt int 1
       & info [ "jobs" ] ~docv:"N"
           ~doc:
             "Worker domains for the condensation-wavefront scheduler.  1 \
              (default) runs the sequential solvers unchanged; 0 means all \
              recommended cores.  Results are bit-identical at every setting.")

let tier_conv =
  let parse s =
    match Ptsto.tier_of_string s with
    | Some t -> Ok t
    | None ->
      Error (`Msg (Printf.sprintf "unknown points-to tier '%s' (steensgaard|andersen)" s))
  in
  let print ppf t = Format.pp_print_string ppf (Ptsto.tier_name t) in
  Arg.conv (parse, print)

let ptsto_arg =
  Arg.(value & opt tier_conv Ptsto.Steensgaard
       & info [ "ptsto" ] ~docv:"TIER"
           ~doc:
             "Points-to tier used to resolve pointer dereferences: \
              $(b,steensgaard) (unification, near-linear, default) or \
              $(b,andersen) (inclusion, more precise).  Ignored on \
              pointer-free programs, whose answers are tier-independent.")

(* Run a command body with span recording per [trace]; the table goes
   to stderr so stdout stays parseable. *)
let with_trace trace f =
  if not trace then f ()
  else begin
    Obs.Span.set_enabled true;
    Fun.protect
      ~finally:(fun () ->
        Obs.Span.set_enabled false;
        match Obs.Span.drain () with
        | [] -> ()
        | spans -> Format.eprintf "%a@." Obs.pp_trace spans)
      f
  end

(* JSON views of analysis results.  Key sets are part of the CLI
   contract (cram-tested); values may change freely. *)

let var_set_json prog set =
  Obs.Json.List
    (List.map
       (fun vid -> Obs.Json.String (Ir.Pp.qualified_var_name prog vid))
       (Bitvec.to_list set))

(* Wavefront leveling of a graph's SCC condensation: how many
   sequential batches the parallel scheduler needs, and the widest one
   (the available parallelism). *)
let condensation_levels graph (scc : Graphs.Scc.result) =
  let csuccs = Array.make (max 1 scc.Graphs.Scc.n_comps) [] in
  Graphs.Digraph.iter_edges graph (fun _ src dst ->
      let cs = scc.Graphs.Scc.comp.(src) and cd = scc.Graphs.Scc.comp.(dst) in
      if cs <> cd then csuccs.(cs) <- cd :: csuccs.(cs));
  Par.Wavefront.of_comp_succs ~n_comps:scc.Graphs.Scc.n_comps
    ~succs_of:(Array.get csuccs)

let graph_shape_json call binding =
  let prog = call.Callgraph.Call.prog in
  let call_scc = Graphs.Scc.compute call.Callgraph.Call.graph in
  let beta_scc = Graphs.Scc.compute binding.Callgraph.Binding.graph in
  let call_levels = condensation_levels call.Callgraph.Call.graph call_scc in
  let beta_levels =
    condensation_levels binding.Callgraph.Binding.graph beta_scc
  in
  Obs.Json.Obj
    [
      ("procedures", Obs.Json.Int (Ir.Prog.n_procs prog));
      ("call_sites", Obs.Json.Int (Ir.Prog.n_sites prog));
      ("call_sccs", Obs.Json.Int call_scc.Graphs.Scc.n_comps);
      ("call_levels", Obs.Json.Int call_levels.Par.Wavefront.n_levels);
      ("call_max_width", Obs.Json.Int call_levels.Par.Wavefront.max_width);
      ("beta_nodes", Obs.Json.Int (Callgraph.Binding.n_nodes binding));
      ("beta_edges", Obs.Json.Int (Callgraph.Binding.n_edges binding));
      ("beta_sccs", Obs.Json.Int beta_scc.Graphs.Scc.n_comps);
      ("beta_levels", Obs.Json.Int beta_levels.Par.Wavefront.n_levels);
      ("beta_max_width", Obs.Json.Int beta_levels.Par.Wavefront.max_width);
      ( "beta_edges_by_level",
        Obs.Json.Obj
          (List.map
             (fun (lvl, count) -> (Printf.sprintf "L%d" lvl, Obs.Json.Int count))
             (Callgraph.Binding.edges_by_level binding)) );
      ("nesting_depth", Obs.Json.Int (Ir.Prog.max_level prog));
    ]

let analysis_json (t : Core.Analyze.t) =
  let prog = t.Core.Analyze.prog in
  let procedures =
    let acc = ref [] in
    Ir.Prog.iter_procs prog (fun pr ->
        let pid = pr.Ir.Prog.pid in
        acc :=
          Obs.Json.Obj
            [
              ("name", Obs.Json.String pr.Ir.Prog.pname);
              ( "rmod",
                Obs.Json.List
                  (List.map
                     (fun vid -> Obs.Json.String (Ir.Pp.qualified_var_name prog vid))
                     (Core.Rmod.rmod_of_proc t.Core.Analyze.rmod pid)) );
              ("imod_plus", var_set_json prog t.Core.Analyze.imod_plus.(pid));
              ("gmod", var_set_json prog t.Core.Analyze.gmod.(pid));
              ("guse", var_set_json prog t.Core.Analyze.guse.(pid));
              ( "aliases",
                Obs.Json.List
                  (List.map
                     (fun (x, y) ->
                       Obs.Json.List
                         [
                           Obs.Json.String (Ir.Pp.qualified_var_name prog x);
                           Obs.Json.String (Ir.Pp.qualified_var_name prog y);
                         ])
                     (Core.Alias.pairs t.Core.Analyze.alias pid)) );
            ]
          :: !acc);
    Obs.Json.List (List.rev !acc)
  in
  let sites =
    let acc = ref [] in
    Ir.Prog.iter_sites prog (fun s ->
        let sid = s.Ir.Prog.sid in
        acc :=
          Obs.Json.Obj
            [
              ("sid", Obs.Json.Int sid);
              ( "caller",
                Obs.Json.String (Ir.Prog.proc prog s.Ir.Prog.caller).Ir.Prog.pname );
              ( "callee",
                Obs.Json.String (Ir.Prog.proc prog s.Ir.Prog.callee).Ir.Prog.pname );
              ("mod", var_set_json prog (Core.Analyze.mod_of_site t sid));
              ("use", var_set_json prog (Core.Analyze.use_of_site t sid));
            ]
          :: !acc);
    Obs.Json.List (List.rev !acc)
  in
  Obs.Json.Obj
    [
      ("program", Obs.Json.String prog.Ir.Prog.name);
      ("graph", graph_shape_json t.Core.Analyze.call t.Core.Analyze.binding);
      ("procedures", procedures);
      ("sites", sites);
    ]

(* --- analyze --- *)

let analyze_cmd =
  let run file flat trace json jobs ptsto =
    with_trace trace @@ fun () ->
    let prog = load file in
    let t =
      Par.Pool.with_pool ~jobs (fun pool ->
          Core.Analyze.run ~force_flat:flat ?pool ~ptsto prog)
    in
    if json then print_endline (Obs.Json.to_string (analysis_json t))
    else Format.printf "%a@." Core.Analyze.pp_report t
  in
  let flat =
    Arg.(value & flag & info [ "force-flat" ]
           ~doc:"Use plain Figure-2 findgmod even on nested programs (ablation).")
  in
  Cmd.v
    (Cmd.info "analyze" ~doc:"Interprocedural MOD/USE analysis of a MiniProc file.")
    Term.(const run $ file_arg $ flat $ trace_arg $ json_arg $ jobs_arg $ ptsto_arg)

(* --- must --- *)

let must_cmd =
  let run file trace json jobs ptsto =
    with_trace trace @@ fun () ->
    let prog = load file in
    let t =
      Par.Pool.with_pool ~jobs (fun pool -> Core.Analyze.run ?pool ~ptsto prog)
    in
    let m = t.Core.Analyze.mustmod in
    if json then begin
      let procedures =
        let acc = ref [] in
        Ir.Prog.iter_procs prog (fun pr ->
            let pid = pr.Ir.Prog.pid in
            acc :=
              Obs.Json.Obj
                [
                  ("name", Obs.Json.String pr.Ir.Prog.pname);
                  ("mustmod", var_set_json prog (Core.Mustmod.mustmod_of m pid));
                  ("intra", var_set_json prog (Core.Mustmod.intra_of m pid));
                  ("demoted", var_set_json prog (Core.Mustmod.demoted_of m pid));
                  ("gmod", var_set_json prog t.Core.Analyze.gmod.(pid));
                ]
              :: !acc);
        Obs.Json.List (List.rev !acc)
      in
      print_endline
        (Obs.Json.to_string
           (Obs.Json.Obj
              [
                ("program", Obs.Json.String prog.Ir.Prog.name);
                ("rounds", Obs.Json.Int m.Core.Mustmod.rounds);
                ( "subset_of_gmod",
                  Obs.Json.Bool
                    (Core.Mustmod.check_subset m ~gmod:t.Core.Analyze.gmod) );
                ("procedures", procedures);
              ]))
    end
    else Format.printf "%a@." Core.Mustmod.pp m
  in
  Cmd.v
    (Cmd.info "must"
       ~doc:
         "Interprocedural MUSTMOD summaries: the variables each procedure \
          definitely writes on every terminating run — intersection over \
          branch paths, propagated bottom-up over the call condensation, \
          alias-demoted, capped by GMOD.  These are the kill sets that make \
          call sites strongly transparent to the dataflow solvers.")
    Term.(const run $ file_arg $ trace_arg $ json_arg $ jobs_arg $ ptsto_arg)

(* --- lint --- *)

let lint_cmd =
  let severity_conv =
    let parse s =
      match Lint.Diagnostic.severity_of_string s with
      | Some sev -> Ok sev
      | None ->
        Error (`Msg (Printf.sprintf "unknown severity '%s' (note|warning|error)" s))
    in
    let print ppf s =
      Format.pp_print_string ppf (Lint.Diagnostic.severity_to_string s)
    in
    Arg.conv (parse, print)
  in
  let run file rule_names json threshold trace jobs ptsto =
    let code =
      with_trace trace @@ fun () ->
      let prog, locs = load_with_locs file in
      let rules =
        match rule_names with
        | [] -> Lint.Rule.all
        | names ->
          List.map
            (fun name ->
              match Lint.Rule.find name with
              | Some r -> r
              | None ->
                Format.eprintf "lint: unknown rule '%s' (known: %s)@." name
                  (String.concat ", "
                     (List.map (fun r -> r.Lint.Rule.name) Lint.Rule.all));
                exit 2)
            names
      in
      let findings =
        Par.Pool.with_pool ~jobs (fun pool ->
            let t = Core.Analyze.run ?pool ~ptsto prog in
            Lint.Engine.run ?pool ~locs ~rules t)
      in
      if json then
        print_endline
          (Obs.Json.to_string
             (Lint.Engine.report_json ~program:prog.Ir.Prog.name ~rules findings))
      else if findings = [] then Format.printf "no findings@."
      else begin
        List.iter
          (fun d -> Format.printf "@[<v>%a@]@." Lint.Diagnostic.pp d)
          findings;
        let count sev =
          List.length
            (List.filter (fun d -> d.Lint.Diagnostic.severity = sev) findings)
        in
        Format.printf "%d findings: %d error, %d warning, %d note@."
          (List.length findings)
          (count Lint.Diagnostic.Error)
          (count Lint.Diagnostic.Warning)
          (count Lint.Diagnostic.Note)
      end;
      let over = Lint.Diagnostic.severity_order threshold in
      if
        List.exists
          (fun d -> Lint.Diagnostic.severity_order d.Lint.Diagnostic.severity >= over)
          findings
      then 1
      else 0
    in
    if code <> 0 then exit code
  in
  let rules_arg =
    Arg.(
      value
      & opt (list string) []
      & info [ "rules" ] ~docv:"RULES"
          ~doc:
            "Comma-separated subset of rules to run (default: all).  Known \
             rules: unused-formal, write-only-global, pure-proc, \
             alias-inflation, aliased-actuals, loop-parallel, dead-store, \
             rmw-hint, undereferenced-ptr, ptr-formal-store, \
             use-before-init, redundant-store.")
  in
  let threshold_arg =
    Arg.(
      value
      & opt severity_conv Lint.Diagnostic.Warning
      & info [ "severity-threshold" ] ~docv:"SEV"
          ~doc:
            "Exit non-zero when any finding is at or above this severity \
             (note|warning|error; default warning).")
  in
  Cmd.v
    (Cmd.info "lint"
       ~doc:
         "Summary-driven interprocedural diagnostics: unused reference \
          formals, write-only globals, pure procedures, alias-inflated call \
          sites, aliased-actual hazards, and loop-parallelisability verdicts.")
    Term.(
      const run $ file_arg $ rules_arg $ json_arg $ threshold_arg $ trace_arg
      $ jobs_arg $ ptsto_arg)

(* --- explain --- *)

(* Fact grammar (the --fact argument):
     gmod:P:V   why V ∈ GMOD(P)        guse:P:V   why V ∈ GUSE(P)
     must:P:V   why V ∈ MUSTMOD(P)
     rmod:P:F   why formal F of P is in RMOD      ruse:P:F   ... RUSE
     alias:P:X:Y   why <X, Y> ∈ ALIAS(P)
     diag:CODE[:FILTER]   witnesses of the lint findings with that code
                          (FILTER substring-matches scope or message) *)
type fact =
  | Fglobal of [ `Mod | `Use ] * string * string
  | Fmust of string * string
  | Fref of [ `Mod | `Use ] * string * string
  | Falias of string * string * string
  | Fdiag of string * string option

let parse_fact s =
  match String.split_on_char ':' s with
  | [ "gmod"; p; v ] -> Ok (Fglobal (`Mod, p, v))
  | [ "guse"; p; v ] -> Ok (Fglobal (`Use, p, v))
  | [ "must"; p; v ] -> Ok (Fmust (p, v))
  | [ "rmod"; p; f ] -> Ok (Fref (`Mod, p, f))
  | [ "ruse"; p; f ] -> Ok (Fref (`Use, p, f))
  | [ "alias"; p; x; y ] -> Ok (Falias (p, x, y))
  | [ "diag"; code ] -> Ok (Fdiag (code, None))
  | "diag" :: code :: rest -> Ok (Fdiag (code, Some (String.concat ":" rest)))
  | _ ->
    Error
      (Printf.sprintf
         "unrecognised fact '%s' (expected gmod:P:V | guse:P:V | must:P:V | \
          rmod:P:F | ruse:P:F | alias:P:X:Y | diag:CODE[:FILTER])"
         s)

let explain_cmd =
  let run file fact all json jobs ptsto =
    if (fact = None) = not all then begin
      Format.eprintf "explain: give exactly one of --fact or --all@.";
      exit 2
    end;
    let prog, locs = load_with_locs file in
    Par.Pool.with_pool ~jobs @@ fun pool ->
    let t = Core.Analyze.run ?pool ~provenance:true ~ptsto prog in
    let resolve_proc name =
      match Ir.Prog.find_proc prog name with
      | Some pr -> pr.Ir.Prog.pid
      | None ->
        Format.eprintf "explain: unknown procedure '%s'@." name;
        exit 2
    in
    let resolve_var ~proc name =
      match Ir.Prog.find_var prog ~proc name with
      | Some v -> v.Ir.Prog.vid
      | None ->
        Format.eprintf "explain: unknown variable '%s' in scope of '%s'@." name
          (Ir.Prog.proc prog proc).Ir.Prog.pname;
        exit 2
    in
    let witness_json fact lines =
      Obs.Json.Obj
        [
          ("fact", Obs.Json.String fact);
          ( "witness",
            match lines with
            | None -> Obs.Json.Null
            | Some ls -> Obs.Json.List (List.map (fun l -> Obs.Json.String l) ls)
          );
        ]
    in
    if all then begin
      (* Enumerate every derivable fact and demand a witness for each:
         the executable form of the completeness contract. *)
      let results = ref [] in
      let push fact lines = results := (fact, lines) :: !results in
      Ir.Prog.iter_procs prog (fun pr ->
          let pid = pr.Ir.Prog.pid in
          let pn = pr.Ir.Prog.pname in
          List.iter
            (fun (label, side, sets) ->
              List.iter
                (fun vid ->
                  push
                    (Printf.sprintf "%s:%s:%s" label pn (Ir.Pp.var_name prog vid))
                    (Core.Explain.explain_gmod t ~locs ~side ~proc:pid ~var:vid))
                (Bitvec.to_list sets.(pid)))
            [
              ("gmod", `Mod, t.Core.Analyze.gmod);
              ("guse", `Use, t.Core.Analyze.guse);
            ];
          List.iter
            (fun vid ->
              push
                (Printf.sprintf "must:%s:%s" pn (Ir.Pp.var_name prog vid))
                (Core.Explain.explain_must t ~locs ~proc:pid ~var:vid))
            (Bitvec.to_list
               (Core.Mustmod.mustmod_of t.Core.Analyze.mustmod pid));
          List.iter
            (fun (x, y) ->
              push
                (Printf.sprintf "alias:%s:%s:%s" pn (Ir.Pp.var_name prog x)
                   (Ir.Pp.var_name prog y))
                (Core.Explain.explain_alias t ~locs ~proc:pid x y))
            (Core.Alias.pairs t.Core.Analyze.alias pid));
      Ir.Prog.iter_vars prog (fun v ->
          match v.Ir.Prog.kind with
          | Ir.Prog.Formal { proc; mode = Ir.Prog.By_ref; _ } ->
            let pn = (Ir.Prog.proc prog proc).Ir.Prog.pname in
            if Core.Rmod.modified t.Core.Analyze.rmod v.Ir.Prog.vid then
              push
                (Printf.sprintf "rmod:%s:%s" pn v.Ir.Prog.vname)
                (Core.Explain.explain_rmod t ~locs ~side:`Mod ~var:v.Ir.Prog.vid);
            if Core.Rmod.modified t.Core.Analyze.ruse v.Ir.Prog.vid then
              push
                (Printf.sprintf "ruse:%s:%s" pn v.Ir.Prog.vname)
                (Core.Explain.explain_rmod t ~locs ~side:`Use ~var:v.Ir.Prog.vid)
          | _ -> ());
      List.iter
        (fun d ->
          push
            (Printf.sprintf "diag:%s:%s" d.Lint.Diagnostic.code
               d.Lint.Diagnostic.scope)
            (match d.Lint.Diagnostic.witness with [] -> None | w -> Some w))
        (Lint.Engine.run ?pool ~locs t);
      let results = List.rev !results in
      let missing = List.filter (fun (_, w) -> w = None) results in
      if json then
        print_endline
          (Obs.Json.to_string
             (Obs.Json.Obj
                [
                  ("file", Obs.Json.String file);
                  ("program", Obs.Json.String prog.Ir.Prog.name);
                  ( "facts",
                    Obs.Json.List
                      (List.map (fun (f, w) -> witness_json f w) results) );
                  ("total", Obs.Json.Int (List.length results));
                  ("missing", Obs.Json.Int (List.length missing));
                ]))
      else begin
        Format.printf "explained %d/%d facts@."
          (List.length results - List.length missing)
          (List.length results);
        List.iter
          (fun (f, _) -> Format.printf "missing witness: %s@." f)
          missing
      end;
      if missing <> [] then exit 1
    end
    else begin
      let fact_str = Option.get fact in
      match parse_fact fact_str with
      | Error msg ->
        Format.eprintf "explain: %s@." msg;
        exit 2
      | Ok (Fdiag (code, filter)) ->
        let matches d =
          d.Lint.Diagnostic.code = code
          && match filter with
             | None -> true
             | Some sub ->
               let has hay =
                 let n = String.length sub and m = String.length hay in
                 let rec go i = i + n <= m && (String.sub hay i n = sub || go (i + 1)) in
                 n = 0 || go 0
               in
               has d.Lint.Diagnostic.scope || has d.Lint.Diagnostic.message
        in
        let found =
          List.filter matches (Lint.Engine.run ?pool ~locs t)
        in
        if found = [] then begin
          Format.eprintf "explain: no finding matches '%s'@." fact_str;
          exit 1
        end;
        if json then
          print_endline
            (Obs.Json.to_string
               (Obs.Json.Obj
                  [
                    ("file", Obs.Json.String file);
                    ("program", Obs.Json.String prog.Ir.Prog.name);
                    ("fact", Obs.Json.String fact_str);
                    ( "findings",
                      Obs.Json.List (List.map Lint.Diagnostic.to_json found) );
                  ]))
        else
          List.iter
            (fun d -> Format.printf "@[<v>%a@]@." Lint.Diagnostic.pp d)
            found
      | Ok fact ->
        let lines =
          match fact with
          | Fglobal (side, p, v) ->
            let pid = resolve_proc p in
            let vid = resolve_var ~proc:pid v in
            Core.Explain.explain_gmod t ~locs ~side ~proc:pid ~var:vid
          | Fmust (p, v) ->
            let pid = resolve_proc p in
            let vid = resolve_var ~proc:pid v in
            Core.Explain.explain_must t ~locs ~proc:pid ~var:vid
          | Fref (side, p, f) ->
            let pid = resolve_proc p in
            let vid = resolve_var ~proc:pid f in
            Core.Explain.explain_rmod t ~locs ~side ~var:vid
          | Falias (p, x, y) ->
            let pid = resolve_proc p in
            Core.Explain.explain_alias t ~locs ~proc:pid
              (resolve_var ~proc:pid x) (resolve_var ~proc:pid y)
          | Fdiag _ -> assert false
        in
        match lines with
        | None ->
          Format.eprintf "explain: fact '%s' does not hold@." fact_str;
          exit 1
        | Some ls ->
          if json then
            print_endline
              (Obs.Json.to_string
                 (Obs.Json.Obj
                    [
                      ("file", Obs.Json.String file);
                      ("program", Obs.Json.String prog.Ir.Prog.name);
                      ("fact", Obs.Json.String fact_str);
                      ( "witness",
                        Obs.Json.List (List.map (fun l -> Obs.Json.String l) ls)
                      );
                    ]))
          else List.iter print_endline ls
    end
  in
  let fact_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "fact" ] ~docv:"FACT"
          ~doc:
            "The fact to explain: $(b,gmod:P:V) / $(b,guse:P:V) (why variable \
             V is in GMOD/GUSE of procedure P), $(b,must:P:V) (why V is in \
             MUSTMOD of P — definitely written on every run), $(b,rmod:P:F) \
             / $(b,ruse:P:F) (why reference formal F of P is in RMOD/RUSE), \
             $(b,alias:P:X:Y) (why X and Y may alias in P), or \
             $(b,diag:CODE[:FILTER]) (witnesses of the lint findings with \
             that code, FILTER substring-matching scope or message).")
  in
  let all_arg =
    Arg.(
      value & flag
      & info [ "all" ]
          ~doc:
            "Instead of --fact, enumerate every GMOD/GUSE, MUSTMOD, \
             RMOD/RUSE and alias fact plus every lint finding, check each \
             has a witness, and exit non-zero if any lacks one.")
  in
  Cmd.v
    (Cmd.info "explain"
       ~doc:
         "Print the derivation chain (witness) of an analysis fact: the β/call \
          path that carried it, ending at source-level evidence with spans.")
    Term.(const run $ file_arg $ fact_arg $ all_arg $ json_arg $ jobs_arg $ ptsto_arg)

(* --- ptsto --- *)

let ptsto_cmd =
  let run file tier json trace =
    with_trace trace @@ fun () ->
    let prog = load file in
    if not (Ptsto.has_pointers prog) then begin
      Format.eprintf "ptsto: '%s' has no pointer variables@." file;
      exit 1
    end;
    let pt = Ptsto.analyze ~tier prog in
    let t = Core.Analyze.run ~ptsto:tier prog in
    if json then begin
      let loc_json = function
        | `Var vid -> Obs.Json.String (Ir.Pp.qualified_var_name prog vid)
        | `Heap k -> Obs.Json.String (Ptsto.heap_name pt k)
      in
      let pointers =
        let acc = ref [] in
        Ir.Prog.iter_vars prog (fun v ->
            if Ir.Types.is_ptr v.Ir.Prog.vty then
              acc :=
                Obs.Json.Obj
                  [
                    ( "var",
                      Obs.Json.String (Ir.Pp.qualified_var_name prog v.Ir.Prog.vid) );
                    ( "points_to",
                      Obs.Json.List
                        (List.map loc_json (Ptsto.points_to pt v.Ir.Prog.vid)) );
                  ]
                :: !acc);
        Obs.Json.List (List.rev !acc)
      in
      let heap =
        Obs.Json.List
          (List.init (Ptsto.n_heap pt) (fun k ->
               Obs.Json.Obj
                 [
                   ("id", Obs.Json.Int k);
                   ("name", Obs.Json.String (Ptsto.heap_name pt k));
                 ]))
      in
      let alias_pairs =
        let acc = ref [] in
        Ir.Prog.iter_procs prog (fun pr ->
            match Core.Alias.pairs t.Core.Analyze.alias pr.Ir.Prog.pid with
            | [] -> ()
            | pairs ->
              acc :=
                Obs.Json.Obj
                  [
                    ("proc", Obs.Json.String pr.Ir.Prog.pname);
                    ( "pairs",
                      Obs.Json.List
                        (List.map
                           (fun (x, y) ->
                             Obs.Json.List
                               [
                                 Obs.Json.String (Ir.Pp.qualified_var_name prog x);
                                 Obs.Json.String (Ir.Pp.qualified_var_name prog y);
                               ])
                           pairs) );
                  ]
                :: !acc);
        Obs.Json.List (List.rev !acc)
      in
      print_endline
        (Obs.Json.to_string
           (Obs.Json.Obj
              [
                ("program", Obs.Json.String prog.Ir.Prog.name);
                ("tier", Obs.Json.String (Ptsto.tier_name tier));
                ("heap_sites", heap);
                ("pointers", pointers);
                ("size", Obs.Json.Int (Ptsto.size pt));
                ("alias_pairs", alias_pairs);
              ]))
    end
    else begin
      Format.printf "points-to (%s): %d heap site%s, size %d@."
        (Ptsto.tier_name tier) (Ptsto.n_heap pt)
        (if Ptsto.n_heap pt = 1 then "" else "s")
        (Ptsto.size pt);
      Format.printf "%a" Ptsto.pp pt;
      let total = ref 0 in
      Ir.Prog.iter_procs prog (fun pr ->
          match Core.Alias.pairs t.Core.Analyze.alias pr.Ir.Prog.pid with
          | [] -> ()
          | pairs ->
            total := !total + List.length pairs;
            List.iter
              (fun (x, y) ->
                Format.printf "alias %s: <%s, %s>@." pr.Ir.Prog.pname
                  (Ir.Pp.qualified_var_name prog x)
                  (Ir.Pp.qualified_var_name prog y))
              pairs);
      Format.printf "%d §5 alias pair%s@." !total (if !total = 1 then "" else "s")
    end
  in
  let tier_pos =
    Arg.(value & opt tier_conv Ptsto.Steensgaard
         & info [ "tier" ] ~docv:"TIER"
             ~doc:"Points-to tier: $(b,steensgaard) (default) or $(b,andersen).")
  in
  Cmd.v
    (Cmd.info "ptsto"
       ~doc:
         "Flow-insensitive points-to report: per-pointer location sets, heap \
          summary sites, and the §5 alias pairs the solution induces.")
    Term.(const run $ file_arg $ tier_pos $ json_arg $ trace_arg)

(* --- sections --- *)

let sections_cmd =
  let run file trace =
    with_trace trace @@ fun () ->
    let prog = load file in
    if not (Sections.Analyze_sections.applicable prog) then begin
      Format.eprintf "regular-section analysis requires a flat program@.";
      exit 1
    end;
    let t = Sections.Analyze_sections.run prog in
    Format.printf "%a@." Sections.Analyze_sections.pp_report t
  in
  Cmd.v
    (Cmd.info "sections" ~doc:"Regular-section (array subsection) analysis, §6.")
    Term.(const run $ file_arg $ trace_arg)

(* --- sections-report --- *)

let sections_report_cmd =
  let run file json trace =
    with_trace trace @@ fun () ->
    let prog = load file in
    if not (Sections.Analyze_sections.applicable prog) then begin
      Format.eprintf "section-precision report requires a flat program@.";
      exit 1
    end;
    let t = Sections.Analyze_sections.run prog in
    let rows = Sections.Precision.report t in
    if json then
      print_endline (Obs.Json.to_string (Sections.Precision.to_json prog rows))
    else Format.printf "%a@." (Sections.Precision.pp prog) rows
  in
  Cmd.v
    (Cmd.info "sections-report"
       ~doc:
         "Per-array §6 precision report: how many GMOD/GUSE and per-site \
          MOD/USE contexts keep a proper section (row, column, element) \
          instead of collapsing to bottom or whole-array.")
    Term.(const run $ file_arg $ json_arg $ trace_arg)

(* --- dataflow --- *)

let dataflow_cmd =
  let run file blocks json trace jobs =
    with_trace trace @@ fun () ->
    let prog, locs = load_with_locs file in
    Par.Pool.with_pool ~jobs (fun pool ->
        let t = Core.Analyze.run ?pool prog in
        let drv = Dataflow.Driver.create ~locs t in
        Dataflow.Driver.solve_all ?pool drv;
        let sol pid = Dataflow.Driver.solution drv pid in
        if json then begin
          let procs =
            let acc = ref [] in
            Ir.Prog.iter_procs prog (fun pr ->
                let s = sol pr.Ir.Prog.pid in
                acc :=
                  Obs.Json.Obj
                    [
                      ("name", Obs.Json.String pr.Ir.Prog.pname);
                      ("blocks", Obs.Json.Int (Dataflow.Cfg.n_blocks s.Dataflow.Driver.cfg));
                      ("edges", Obs.Json.Int (Dataflow.Cfg.n_edges s.Dataflow.Driver.cfg));
                      ("instrs", Obs.Json.Int (Dataflow.Cfg.n_instrs s.Dataflow.Driver.cfg));
                      ("defs", Obs.Json.Int (Dataflow.Reach.n_defs s.Dataflow.Driver.reach));
                      ("live_passes", Obs.Json.Int (Dataflow.Live.passes s.Dataflow.Driver.live));
                      ( "reach_passes",
                        Obs.Json.Int (Dataflow.Reach.passes s.Dataflow.Driver.reach) );
                    ]
                  :: !acc);
            Obs.Json.List (List.rev !acc)
          in
          print_endline
            (Obs.Json.to_string
               (Obs.Json.Obj
                  [
                    ("program", Obs.Json.String prog.Ir.Prog.name);
                    ("procedures", procs);
                  ]))
        end
        else begin
          Format.printf "== dataflow: %s ==@." prog.Ir.Prog.name;
          Ir.Prog.iter_procs prog (fun pr ->
              let s = sol pr.Ir.Prog.pid in
              Format.printf
                "%-12s %3d blocks %3d edges %3d instrs %3d defs  live %d passes, \
                 reach %d passes@."
                pr.Ir.Prog.pname
                (Dataflow.Cfg.n_blocks s.Dataflow.Driver.cfg)
                (Dataflow.Cfg.n_edges s.Dataflow.Driver.cfg)
                (Dataflow.Cfg.n_instrs s.Dataflow.Driver.cfg)
                (Dataflow.Reach.n_defs s.Dataflow.Driver.reach)
                (Dataflow.Live.passes s.Dataflow.Driver.live)
                (Dataflow.Reach.passes s.Dataflow.Driver.reach);
              if blocks then
                Format.printf "@[<v 2>  %a@]@."
                  (Dataflow.Cfg.pp prog)
                  s.Dataflow.Driver.cfg)
        end)
  in
  let blocks_arg =
    Arg.(value & flag
         & info [ "blocks" ] ~doc:"Also print each procedure's basic-block listing.")
  in
  Cmd.v
    (Cmd.info "dataflow"
       ~doc:
         "Statement-level dataflow summary: per-procedure CFG sizes and \
          round-robin solver pass counts for liveness and reaching \
          definitions (calls made transparent by the interprocedural \
          summaries).")
    Term.(const run $ file_arg $ blocks_arg $ json_arg $ trace_arg $ jobs_arg)

(* --- stats --- *)

let stats_cmd =
  let run file trace json jobs =
    with_trace trace @@ fun () ->
    let prog = load file in
    if json then begin
      (* The JSON view additionally runs the full analysis under a
         collected span, so it can report latency histograms (per
         phase) and the GC pressure of the run. *)
      let before = Obs.Metric.snapshot () in
      let (t, reach), span =
        Obs.Span.collect "stats" @@ fun () ->
        let t = Core.Analyze.run ~jobs prog in
        (t, Callgraph.Call.reachable_from_main t.Core.Analyze.call)
      in
      let delta name =
        Obs.Metric.value_since ~since:before (Obs.Metric.counter name)
      in
      (* Scheduler shape: the coarse plan of the call-graph condensation
         at the requested job count (deterministic, cost-free to build)
         plus the runtime counters the solvers actually bumped.  A
         [chain] plan means a pooled run downgrades to fully-inline
         sequential execution and never spawns a domain. *)
      let scheduling =
        let call_scc = Graphs.Scc.compute t.Core.Analyze.call.Callgraph.Call.graph in
        let cl = condensation_levels t.Core.Analyze.call.Callgraph.Call.graph call_scc in
        let plan = Par.Wavefront.plan cl ~jobs:(max 1 jobs) ~cost:(fun _ -> 1) in
        Obs.Json.Obj
          [
            ("jobs", Obs.Json.Int jobs);
            ( "recommended_domain_count",
              Obs.Json.Int (Domain.recommended_domain_count ()) );
            ("call_levels", Obs.Json.Int cl.Par.Wavefront.n_levels);
            ("call_max_width", Obs.Json.Int cl.Par.Wavefront.max_width);
            ("fused_levels", Obs.Json.Int plan.Par.Wavefront.fused_levels);
            ("plan_batches", Obs.Json.Int plan.Par.Wavefront.n_batches);
            ("chain", Obs.Json.Bool plan.Par.Wavefront.chain);
            ("chain_downgrades", Obs.Json.Int (delta "par.chain_downgrades"));
            ("parallel_batches", Obs.Json.Int (delta "par.batches"));
            ("parallel_tasks", Obs.Json.Int (delta "par.tasks"));
          ]
      in
      let gc = span.Obs.Span.gc in
      print_endline
        (Obs.Json.to_string
           (Obs.Json.Obj
              [
                ("program", Obs.Json.String prog.Ir.Prog.name);
                ( "graph",
                  graph_shape_json t.Core.Analyze.call t.Core.Analyze.binding );
                ("reachable", Obs.Json.Int (Bitvec.cardinal reach));
                ( "gc",
                  Obs.Json.Obj
                    [
                      ( "minor_collections",
                        Obs.Json.Int gc.Obs.Span.minor_collections );
                      ( "major_collections",
                        Obs.Json.Int gc.Obs.Span.major_collections );
                      ("promoted_words", Obs.Json.Int gc.Obs.Span.promoted_words);
                      ("top_heap_words", Obs.Json.Int gc.Obs.Span.top_heap_words);
                    ] );
                ("scheduling", scheduling);
                ("histograms", Obs.histograms_json ());
              ]))
    end
    else begin
    let call = Callgraph.Call.build prog in
    let binding = Callgraph.Binding.build prog in
    Format.printf "%a@.%a@." Callgraph.Call.pp_stats call Callgraph.Binding.pp_stats
      binding;
    let beta_scc = Graphs.Scc.compute binding.Callgraph.Binding.graph in
    Format.printf "beta SCCs: %d; beta edges by level: %s@."
      beta_scc.Graphs.Scc.n_comps
      (String.concat " "
         (List.map
            (fun (lvl, count) -> Printf.sprintf "L%d=%d" lvl count)
            (Callgraph.Binding.edges_by_level binding)));
    let call_scc = Graphs.Scc.compute call.Callgraph.Call.graph in
    let cl = condensation_levels call.Callgraph.Call.graph call_scc in
    let bl = condensation_levels binding.Callgraph.Binding.graph beta_scc in
    Format.printf
      "condensation wavefront: call %d levels (max width %d); beta %d levels \
       (max width %d)@."
      cl.Par.Wavefront.n_levels cl.Par.Wavefront.max_width
      bl.Par.Wavefront.n_levels bl.Par.Wavefront.max_width;
    let reach = Callgraph.Call.reachable_from_main call in
    Format.printf "procedures reachable from main: %d / %d@." (Bitvec.cardinal reach)
      (Ir.Prog.n_procs prog);
    Format.printf "nesting depth dP = %d@." (Ir.Prog.max_level prog)
    end
  in
  Cmd.v
    (Cmd.info "stats"
       ~doc:
         "Sizes of the call multi-graph C and binding multi-graph β.  With \
          --json, additionally run the analysis and report per-phase latency \
          histograms, GC statistics, and the coarse wavefront scheduling \
          shape at the requested --jobs.")
    Term.(const run $ file_arg $ trace_arg $ json_arg $ jobs_arg)

(* --- profile --- *)

let profile_cmd =
  let run file json trace_out jobs =
    let source = read_file file in
    Par.Pool.with_pool ~jobs @@ fun pool ->
    let (prog, t), span =
      Obs.Span.collect "profile" @@ fun () ->
      let prog =
        match Frontend.Sema.compile ~file source with
        | Ok prog -> prog
        | Error errs ->
          Format.eprintf "@[<v>%a@]@."
            (Format.pp_print_list ~pp_sep:Format.pp_print_newline
               Frontend.Sema.pp_error)
            errs;
          exit 1
      in
      let t = Core.Analyze.run ?pool prog in
      (* Force the per-site §5 summaries so their cost is on the trace
         (Analyze.run computes them lazily per query). *)
      Obs.Span.with_ "sites" (fun () ->
          Ir.Prog.iter_sites prog (fun s ->
              ignore (Core.Analyze.mod_of_site t s.Ir.Prog.sid);
              ignore (Core.Analyze.use_of_site t s.Ir.Prog.sid)));
      (prog, t)
    in
    (match trace_out with
    | None -> ()
    | Some path ->
      let oc = open_out path in
      Fun.protect
        ~finally:(fun () -> close_out_noerr oc)
        (fun () ->
          output_string oc
            (Obs.Json.to_string (Obs.trace_events_json [ span ]));
          output_char oc '\n');
      Format.eprintf "trace-event JSON written to %s@." path);
    if json then
      print_endline
        (Obs.Json.to_string
           (Obs.Json.Obj
              [
                ("file", Obs.Json.String file);
                ("program", Obs.Json.String prog.Ir.Prog.name);
                ("graph", graph_shape_json t.Core.Analyze.call t.Core.Analyze.binding);
                ("trace", Obs.trace_json [ span ]);
              ]))
    else begin
      Format.printf "== profile: %s ==@." prog.Ir.Prog.name;
      Format.printf "%a@.%a@." Callgraph.Call.pp_stats t.Core.Analyze.call
        Callgraph.Binding.pp_stats t.Core.Analyze.binding;
      Format.printf "%a@." Obs.pp_trace [ span ]
    end
  in
  let trace_out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace-out" ] ~docv:"FILE"
          ~doc:
            "Also write the span tree as Chrome trace-event JSON to $(docv) \
             (loadable in Perfetto or chrome://tracing): one complete event \
             per phase, nonzero metric deltas and GC counters as args.")
  in
  Cmd.v
    (Cmd.info "profile"
       ~doc:
         "Run the full analysis pipeline under tracing and report per-phase wall \
          time and operation-counter deltas (the paper's cost units).")
    Term.(const run $ file_arg $ json_arg $ trace_out_arg $ jobs_arg)

(* --- json-validate --- *)

let json_validate_cmd =
  let run () =
    let buf = Buffer.create 4096 in
    let chunk = Bytes.create 4096 in
    let rec slurp () =
      let n = input stdin chunk 0 (Bytes.length chunk) in
      if n > 0 then begin
        Buffer.add_subbytes buf chunk 0 n;
        slurp ()
      end
    in
    slurp ();
    match Obs.Json.parse (Buffer.contents buf) with
    | Ok _ -> print_endline "json: ok"
    | Error msg ->
      Format.eprintf "json: invalid (%s)@." msg;
      exit 1
  in
  Cmd.v
    (Cmd.info "json-validate"
       ~doc:
         "Validate that stdin is well-formed JSON (used by 'make profile-smoke'; \
          no external jq needed).")
    Term.(const run $ const ())

(* --- gen --- *)

let gen_cmd =
  let run n depth seed globals formals density recursion =
    let rng = Random.State.make [| seed; 0x5e |] in
    let prog =
      Workload.Gen.generate rng
        {
          Workload.Gen.default with
          Workload.Gen.n_procs = n;
          n_globals = globals;
          max_formals = formals;
          binding_density = density;
          recursion;
          max_depth = depth;
        }
    in
    print_string (Ir.Pp.to_string prog)
  in
  let n = Arg.(value & opt int 20 & info [ "n"; "procs" ] ~doc:"Number of procedures.") in
  let depth = Arg.(value & opt int 1 & info [ "depth" ] ~doc:"Max nesting depth.") in
  let seed = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"Random seed.") in
  let globals = Arg.(value & opt int 12 & info [ "globals" ] ~doc:"Global variables.") in
  let formals =
    Arg.(value & opt int 5 & info [ "max-formals" ] ~doc:"Max formals per procedure.")
  in
  let density =
    Arg.(value & opt float 0.5 & info [ "binding-density" ]
           ~doc:"Probability a by-ref actual is itself a formal.")
  in
  let recursion =
    Arg.(value & opt float 0.2 & info [ "recursion" ] ~doc:"Recursion probability.")
  in
  Cmd.v
    (Cmd.info "gen" ~doc:"Generate a random MiniProc program on stdout.")
    Term.(const run $ n $ depth $ seed $ globals $ formals $ density $ recursion)

(* --- run --- *)

let run_cmd =
  let run file fuel =
    let prog = load file in
    let o = Interp.run ~fuel prog in
    List.iter (fun n -> Printf.printf "%d\n" n) o.Interp.output;
    if o.Interp.truncated then
      Format.eprintf "(truncated after %d statements)@." o.Interp.steps
  in
  let fuel =
    Arg.(value & opt int 1_000_000 & info [ "fuel" ] ~doc:"Statement budget.")
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Execute a MiniProc program under the interpreter.")
    Term.(const run $ file_arg $ fuel)

(* --- check --- *)

let check_cmd =
  let run file fuel ptsto =
    let prog = load file in
    let t = Core.Analyze.run ~ptsto prog in
    let o = Interp.run ~fuel prog in
    let violations = ref 0 in
    let executed = ref 0 in
    let observed_total = ref 0 in
    let static_total = ref 0 in
    Ir.Prog.iter_sites prog (fun s ->
        let sid = s.Ir.Prog.sid in
        if o.Interp.calls_executed.(sid) > 0 then begin
          incr executed;
          let om = Interp.observed_mod o sid in
          let sm = Core.Analyze.mod_of_site t sid in
          observed_total := !observed_total + Bitvec.cardinal om;
          static_total := !static_total + Bitvec.cardinal sm;
          if not (Bitvec.subset om sm) then begin
            incr violations;
            Format.printf "UNSOUND at site %d (%s -> %s): observed %a, predicted %a@."
              sid
              (Ir.Prog.proc prog s.Ir.Prog.caller).Ir.Prog.pname
              (Ir.Prog.proc prog s.Ir.Prog.callee).Ir.Prog.pname
              (Ir.Pp.pp_var_set prog) om (Ir.Pp.pp_var_set prog) sm
          end;
          let ou = Interp.observed_use o sid in
          let su = Core.Analyze.use_of_site t sid in
          if not (Bitvec.subset ou su) then begin
            incr violations;
            Format.printf "UNSOUND USE at site %d: observed %a, predicted %a@." sid
              (Ir.Pp.pp_var_set prog) ou (Ir.Pp.pp_var_set prog) su
          end
        end);
    (match t.Core.Analyze.ptsto with
     | None -> ()
     | Some pt ->
       (* Dynamic dereference owners must lie inside the static targets,
          and dynamically overlapping ref formals inside the §5 pairs. *)
       List.iter
         (fun (p, d, owner) ->
           let ok =
             if owner >= 0 then List.mem owner (Ptsto.deref_targets pt p d)
             else Ptsto.deref_heap pt p d <> []
           in
           if not ok then begin
             incr violations;
             Format.printf
               "UNSOUND DEREF: *^%d of '%s' reached %s outside the static \
                points-to targets@."
               d
               (Ir.Pp.qualified_var_name prog p)
               (if owner >= 0 then
                  Printf.sprintf "'%s'" (Ir.Pp.qualified_var_name prog owner)
                else "heap storage")
           end)
         o.Interp.ptr_obs;
       List.iter
         (fun (pid, x, y) ->
           if not (Core.Alias.may_alias t.Core.Analyze.alias ~proc:pid x y)
           then begin
             incr violations;
             Format.printf
               "UNSOUND ALIAS: '%s' and '%s' shared storage in '%s' but the \
                §5 pairs miss them@."
               (Ir.Pp.qualified_var_name prog x)
               (Ir.Pp.qualified_var_name prog y)
               (Ir.Prog.proc prog pid).Ir.Prog.pname
           end)
         o.Interp.alias_obs);
    Format.printf
      "sites executed: %d / %d%s; soundness violations: %d@.observed MOD bits: %d; \
       predicted MOD bits: %d (precision %.0f%%)@."
      !executed (Ir.Prog.n_sites prog)
      (if o.Interp.truncated then " (run truncated)" else "")
      !violations !observed_total !static_total
      (if !static_total = 0 then 100.0
       else 100.0 *. float_of_int !observed_total /. float_of_int !static_total);
    if !violations > 0 then exit 1
  in
  let fuel =
    Arg.(value & opt int 200_000 & info [ "fuel" ] ~doc:"Statement budget.")
  in
  Cmd.v
    (Cmd.info "check"
       ~doc:
         "Differentially validate the analysis: execute the program and verify \
          observed effects (including pointer dereferences and dynamic \
          aliasing) are within the predicted static sets.")
    Term.(const run $ file_arg $ fuel $ ptsto_arg)

(* --- dot --- *)

let dot_cmd =
  let run file which output highlight =
    let prog = load file in
    let dot =
      match (which, highlight) with
      | `Call, None -> Callgraph.Dot.call_graph (Callgraph.Call.build prog)
      | `Call, Some `Lint ->
        let highlight = Lint.Engine.highlight (Core.Analyze.run prog) in
        Callgraph.Dot.call_graph ~highlight (Callgraph.Call.build prog)
      | `Binding, Some _ ->
        Format.eprintf "dot: --highlight applies to the call graph only@.";
        exit 1
      | `Binding, None -> Callgraph.Dot.binding_graph (Callgraph.Binding.build prog)
    in
    match output with
    | None -> print_string dot
    | Some path -> Callgraph.Dot.write_file path dot
  in
  let which =
    Arg.(
      value
      & opt (enum [ ("call", `Call); ("binding", `Binding) ]) `Call
      & info [ "graph" ] ~doc:"Which graph: 'call' (C) or 'binding' (beta).")
  in
  let output =
    Arg.(value & opt (some string) None & info [ "o" ] ~doc:"Output file (default stdout).")
  in
  let highlight =
    Arg.(
      value
      & opt (some (enum [ ("lint", `Lint) ])) None
      & info [ "highlight" ] ~docv:"WHAT"
          ~doc:
            "Decorate the call graph from analysis results: 'lint' fills pure \
             procedures (empty GMOD, no I/O) green and colours \
             alias-inflated call edges red.")
  in
  Cmd.v
    (Cmd.info "dot" ~doc:"Emit the call or binding multi-graph in Graphviz format.")
    Term.(const run $ file_arg $ which $ output $ highlight)

(* --- constants --- *)

let constants_cmd =
  let run file =
    let prog = load file in
    let info = Ir.Info.make prog in
    let binding = Callgraph.Binding.build prog in
    let imod = Frontend.Local.imod info in
    let rmod = Core.Rmod.solve binding ~imod in
    let imod_plus = Core.Imod_plus.compute info ~rmod ~imod in
    let r = Ipcp.analyze info ~imod_plus in
    Format.printf "%a@." (Ipcp.pp prog) r
  in
  Cmd.v
    (Cmd.info "constants"
       ~doc:
         "Interprocedural constant propagation: formal parameters bound to the \
          same constant at every call site.")
    Term.(const run $ file_arg)

(* --- inline --- *)

let inline_cmd =
  let run file max =
    let prog = load file in
    let after = Transform.Inline.inline_all_once prog ~max in
    (match Ir.Validate.run after with
    | Ok () -> ()
    | Error _ -> Format.eprintf "internal error: transformed program invalid@.");
    Format.eprintf "sites: %d -> %d@." (Ir.Prog.n_sites prog) (Ir.Prog.n_sites after);
    print_string (Ir.Pp.to_string after)
  in
  let max =
    Arg.(value & opt int 10 & info [ "max" ] ~doc:"Maximum number of sites to inline.")
  in
  Cmd.v
    (Cmd.info "inline"
       ~doc:"Inline call sites (lowest site id first) and print the program.")
    Term.(const run $ file_arg $ max)

(* --- bench-table --- *)

(* --- edit --- *)

(* Procedures and variables are matched by name across an edit script
   (ids are renumbered by procedure removal), so the delta tables read
   stably no matter how the tables shifted underneath.  The actual
   encoder lives in Serve.Delta — one implementation for this table,
   this command's --json, and the server's edit responses, so the two
   surfaces cannot drift. *)
let edit_cmd =
  let set_names = Serve.Delta.set_names in
  let run file script random seed incremental lint json jobs =
    Par.Pool.with_pool ~jobs @@ fun pool ->
    let prog = load file in
    let steps =
      match (script, random) with
      | Some path, 0 -> (
        match Incremental.Script.parse prog (read_file path) with
        | Ok steps -> steps
        | Error e ->
          (* The failing line is data, not prose: --json consumers get
             it as a field. *)
          if json then
            print_endline
              (Obs.Json.to_string
                 (Obs.Json.Obj
                    [
                      ( "error",
                        Obs.Json.Obj
                          [
                            ("kind", Obs.Json.String "script-parse");
                            ("script", Obs.Json.String path);
                            ("line", Obs.Json.Int e.Incremental.Script.line);
                            ( "message",
                              Obs.Json.String e.Incremental.Script.message );
                          ] );
                    ]))
          else
            Format.eprintf "%s: %s@." path
              (Incremental.Script.error_to_string e);
          exit 1)
      | None, n when n > 0 ->
        Workload.Edits.gen
          ~rand:(Random.State.make [| seed; 0xed |])
          ~steps:n prog
      | _ ->
        Format.eprintf "edit: give exactly one of --script or --random@.";
        exit 1
    in
    let before = Core.Analyze.run ?pool prog in
    let lint_before = if lint then Some (Lint.Engine.run ?pool before) else None in
    (* First full-re-analysis reason across the script, when the
       incremental path gave up (e.g. "pointer program: points-to
       solution may shift") — surfaced so callers can tell a real
       incremental run from a silent fallback. *)
    let fallback_reason = ref None in
    let after, lint_after =
      if incremental then begin
        let engine = Incremental.Engine.create ?pool prog in
        List.iter
          (fun (edit, _) ->
            let o = Incremental.Engine.apply engine edit in
            match o.Incremental.Engine.fallback with
            | Some r when !fallback_reason = None -> fallback_reason := Some r
            | _ -> ())
          steps;
        let lint_after =
          if lint then Some (Incremental.Engine.lint engine) else None
        in
        (Incremental.Engine.analysis engine, lint_after)
      end
      else begin
        let a =
          Core.Analyze.run ?pool
            (match List.rev steps with [] -> prog | (_, p) :: _ -> p)
        in
        (a, if lint then Some (Lint.Engine.run ?pool a) else None)
      end
    in
    let lint_delta =
      match (lint_before, lint_after) with
      | Some b, Some a -> Some (Lint.Engine.delta ~before:b ~after:a)
      | _ -> None
    in
    let edits_rendered =
      List.rev
        (fst
           (List.fold_left
              (fun (acc, p) (edit, p') ->
                (Incremental.Edit.to_string p edit :: acc, p'))
              ([], prog) steps))
    in
    let snap = Serve.Delta.snapshot before in
    let gmod_rows = Serve.Delta.rows snap after ~side:`Mod in
    let guse_rows = Serve.Delta.rows snap after ~side:`Use in
    let aprog = after.Core.Analyze.prog in
    let lint_json_fields = Serve.Delta.lint_fields lint_delta in
    if json then
      print_endline
        (Obs.Json.to_string
           (Obs.Json.Obj
              ([
                ("program", Obs.Json.String prog.Ir.Prog.name);
                ( "edits",
                  Obs.Json.List
                    (List.map (fun e -> Obs.Json.String e) edits_rendered) );
                ("incremental", Obs.Json.Bool incremental);
                ( "fallback_reason",
                  match !fallback_reason with
                  | None -> Obs.Json.Null
                  | Some r -> Obs.Json.String r );
                ("gmod_delta", Serve.Delta.rows_json gmod_rows);
                ("guse_delta", Serve.Delta.rows_json guse_rows);
                ( "sites",
                  Obs.Json.List
                    (List.concat_map
                       (fun (s : Ir.Prog.site) ->
                         let sid = s.Ir.Prog.sid in
                         [
                           Obs.Json.Obj
                             [
                               ("sid", Obs.Json.Int sid);
                               ( "caller",
                                 Obs.Json.String
                                   (Ir.Prog.proc aprog s.Ir.Prog.caller)
                                     .Ir.Prog.pname );
                               ( "callee",
                                 Obs.Json.String
                                   (Ir.Prog.proc aprog s.Ir.Prog.callee)
                                     .Ir.Prog.pname );
                               ( "mod",
                                 var_set_json aprog
                                   (Core.Analyze.mod_of_site after sid) );
                               ( "use",
                                 var_set_json aprog
                                   (Core.Analyze.use_of_site after sid) );
                             ];
                         ])
                       (Array.to_list aprog.Ir.Prog.sites)) );
              ]
              @ lint_json_fields)))
    else begin
      Format.printf "== edits (%d) ==@." (List.length edits_rendered);
      List.iteri (fun i e -> Format.printf "  %d. %s@." (i + 1) e) edits_rendered;
      (* Notice, not payload: stderr, so the human report stays
         byte-identical to a batch run (the cram contract). *)
      (match !fallback_reason with
      | Some r -> Format.eprintf "incremental fallback: %s@." r
      | None -> ());
      Format.printf "%a" (Serve.Delta.pp_rows ~title:"GMOD") gmod_rows;
      Format.printf "%a" (Serve.Delta.pp_rows ~title:"GUSE") guse_rows;
      Format.printf "== sites after ==@.";
      Ir.Prog.iter_sites aprog (fun s ->
          let sid = s.Ir.Prog.sid in
          Format.printf "  s%-3d %s -> %s  MOD {%s}  USE {%s}@." sid
            (Ir.Prog.proc aprog s.Ir.Prog.caller).Ir.Prog.pname
            (Ir.Prog.proc aprog s.Ir.Prog.callee).Ir.Prog.pname
            (String.concat ","
               (set_names aprog (Core.Analyze.mod_of_site after sid)))
            (String.concat ","
               (set_names aprog (Core.Analyze.use_of_site after sid))));
      match lint_delta with
      | None -> ()
      | Some (added, removed) ->
        Format.printf "== lint delta ==@.";
        if added = [] && removed = [] then Format.printf "  (none)@."
        else begin
          List.iter
            (fun d -> Format.printf "  + @[<v>%a@]@." Lint.Diagnostic.pp d)
            added;
          List.iter
            (fun d -> Format.printf "  - @[<v>%a@]@." Lint.Diagnostic.pp d)
            removed
        end
    end
  in
  let script_arg =
    Arg.(
      value
      & opt (some file) None
      & info [ "script" ] ~docv:"EDITS"
          ~doc:"Edit script (one edit per line; see docs/incremental.md).")
  in
  let random_arg =
    Arg.(
      value & opt int 0
      & info [ "random" ] ~docv:"N"
          ~doc:
            "Instead of --script, draw $(docv) random valid edits \
             (Workload.Edits generator).")
  in
  let seed_arg =
    Arg.(value & opt int 42 & info [ "seed" ] ~doc:"Seed for --random.")
  in
  let incremental_arg =
    Arg.(
      value & flag
      & info [ "incremental" ]
          ~doc:
            "Maintain the analysis incrementally across the script instead of \
             re-analysing from scratch at the end.  Output is identical by \
             construction; only the work done differs.")
  in
  let lint_arg =
    Arg.(
      value & flag
      & info [ "lint" ]
          ~doc:
            "Also lint before and after the script and report the diagnostic \
             delta (findings added and removed by the edits; positions are \
             dummy, matching is on code/scope/message).")
  in
  Cmd.v
    (Cmd.info "edit"
       ~doc:
         "Apply an edit script to a program and report the analysis deltas \
          (GMOD/GUSE by procedure, MOD/USE by call site).")
    Term.(
      const run $ file_arg $ script_arg $ random_arg $ seed_arg
      $ incremental_arg $ lint_arg $ json_arg $ jobs_arg)

(* --- serve --- *)

let serve_cmd =
  let run socket loads jobs =
    Par.Pool.with_pool ~jobs @@ fun pool ->
    let server = Serve.Server.create ?pool () in
    List.iter
      (fun spec ->
        match String.index_opt spec '=' with
        | Some i ->
          let name = String.sub spec 0 i in
          let path = String.sub spec (i + 1) (String.length spec - i - 1) in
          (match Serve.Server.load_file server ~name ~path with
          | Ok () -> ()
          | Error msg ->
            Format.eprintf "serve: --load %s: %s@." spec msg;
            exit 1)
        | None ->
          Format.eprintf "serve: --load expects NAME=FILE, got '%s'@." spec;
          exit 1)
      loads;
    match socket with
    | Some path -> Serve.Server.serve_socket server ~path
    | None -> Serve.Server.serve_channels server stdin stdout
  in
  let socket_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "socket" ] ~docv:"PATH"
          ~doc:
            "Serve a Unix socket at $(docv) instead of stdin/stdout.  The \
             socket is created (any stale file replaced) and removed on \
             shutdown.")
  in
  let load_arg =
    Arg.(
      value & opt_all string []
      & info [ "load" ] ~docv:"NAME=FILE"
          ~doc:
            "Pre-load a MiniProc file under a program name (repeatable).  \
             Compilation happens immediately; analysis is deferred to the \
             first query.")
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run the analysis server: line-delimited JSON requests (load / query \
          / edit / explain / stats / shutdown) against in-memory analyses \
          with per-client incremental edit sessions.  See docs/serve.md for \
          the protocol.")
    Term.(const run $ socket_arg $ load_arg $ jobs_arg)

let bench_table_cmd =
  let run sizes =
    Format.printf
      "# empirical linearity (experiment L1): operation counts vs problem size@.";
    Format.printf "# %6s %8s %8s %8s | %10s %12s | %12s %12s@." "N" "E" "N_beta"
      "E_beta" "rmod_steps" "per(Nb+Eb)" "gmod_vecops" "per(N+E)";
    List.iter
      (fun n ->
        let prog = Workload.Families.fortran_style ~seed:7 ~n in
        let info = Ir.Info.make prog in
        let call = Callgraph.Call.build prog in
        let binding = Callgraph.Binding.build prog in
        let imod = Frontend.Local.imod info in
        let rmod = Core.Rmod.solve binding ~imod in
        let imod_plus = Core.Imod_plus.compute info ~rmod ~imod in
        Bitvec.Stats.reset ();
        let _ = Core.Gmod.solve info call ~imod_plus in
        let vec_ops = Bitvec.Stats.vector_ops () in
        let nb = Callgraph.Binding.n_nodes binding
        and eb = Callgraph.Binding.n_edges binding in
        let e = Ir.Prog.n_sites prog in
        Format.printf "  %6d %8d %8d %8d | %10d %12.2f | %12d %12.2f@." n e nb eb
          rmod.Core.Rmod.steps
          (float_of_int rmod.Core.Rmod.steps /. float_of_int (max 1 (nb + eb)))
          vec_ops
          (float_of_int vec_ops /. float_of_int (max 1 (n + e))))
      sizes
  in
  let sizes =
    Arg.(value & opt (list int) [ 128; 256; 512; 1024; 2048; 4096; 8192 ]
           & info [ "sizes" ] ~doc:"Program sizes (procedure counts) to sweep.")
  in
  Cmd.v
    (Cmd.info "bench-table"
       ~doc:"Print operation counts demonstrating the linear-time bounds.")
    Term.(const run $ sizes)

let () =
  let default = Term.(ret (const (`Help (`Pager, None)))) in
  exit
    (Cmd.eval
       (Cmd.group ~default
          (Cmd.info "sidefx" ~version:"1.0.0"
             ~doc:"Interprocedural side-effect analysis in linear time (Cooper & Kennedy, PLDI 1988).")
          [ analyze_cmd; must_cmd; lint_cmd; explain_cmd; ptsto_cmd; sections_cmd; sections_report_cmd; dataflow_cmd; stats_cmd; profile_cmd; json_validate_cmd; gen_cmd; run_cmd; check_cmd; dot_cmd; constants_cmd; inline_cmd; edit_cmd; serve_cmd; bench_table_cmd ]))
