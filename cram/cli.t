Graph statistics for the quickstart program:

  $ ../bin/sidefx.exe stats ../programs/bank.mp
  4 procedures, 4 call sites, 4 SCCs
  C: 4 nodes, 4 edges; beta: 2 nodes, 1 edges; mu_f = 1.33, mu_a = 1.50; size ratio N_beta/N_C = 0.50, E_beta/E_C = 0.25
  beta SCCs: 2; beta edges by level: L1=1
  condensation wavefront: call 4 levels (max width 1); beta 2 levels (max width 1)
  procedures reachable from main: 4 / 4
  nesting depth dP = 1

The full MOD/USE report:

  $ ../bin/sidefx.exe analyze ../programs/bank.mp
  == analysis report: bank ==
  4 procedures, 4 call sites, 4 SCCs
  C: 4 nodes, 4 edges; beta: 2 nodes, 1 edges; mu_f = 1.33, mu_a = 1.50; size ratio N_beta/N_C = 0.50, E_beta/E_C = 0.25
  
  procedure bank:
    IMOD+ = {balance, rate, log_count}
    GMOD  = {balance, rate, log_count}
    GUSE  = {balance, rate, log_count}
    MUSTMOD = {balance, rate, log_count}
  procedure audit:
    IMOD+ = {log_count}
    GMOD  = {log_count}
    GUSE  = {log_count, audit.amount}
    MUSTMOD = {log_count}
  procedure deposit:
    RMOD = {account}
    IMOD+ = {deposit.account}
    GMOD  = {log_count, deposit.account}
    GUSE  = {log_count, deposit.account, deposit.amount}
    MUSTMOD = {log_count, deposit.account}
  procedure apply_interest:
    RMOD = {account}
    IMOD+ = {apply_interest.account, apply_interest.delta}
    GMOD  = {log_count, apply_interest.account, apply_interest.delta}
    GUSE  = {rate, log_count, apply_interest.account, apply_interest.delta}
    MUSTMOD = {log_count, apply_interest.account, apply_interest.delta}
  
  ALIAS(deposit) = {<balance, account>}
  ALIAS(apply_interest) = {<balance, account>}
  
  
  site 0: bank calls deposit
    MOD = {balance, log_count}
    USE = {balance, log_count}
  
  site 1: bank calls apply_interest
    MOD = {balance, log_count}
    USE = {balance, rate, log_count}
  
  site 2: deposit calls audit
    MOD = {log_count}
    USE = {log_count, deposit.amount}
  
  site 3: apply_interest calls deposit
    MOD = {balance, log_count, apply_interest.account}
    USE = {balance, log_count, apply_interest.account, apply_interest.delta}
  

Regular sections on the stencil kernels (8.2):

  $ ../bin/sidefx.exe sections ../programs/stencil.mp
  == sectioned analysis: stencil ==
  procedure stencil:
    GMOD = {n*, grid(*, *), total*, i*}
    GUSE = {n*, grid(*, *), total*, i*}
  procedure relax_row:
    GMOD = {a(i, *), j*}
    GUSE = {n*, a(i, *), i*, j*}
  procedure sum_row:
    GMOD = {total*, j*}
    GUSE = {n*, grid(i, *), total*, i*, j*}
  site 0 (stencil -> relax_row): MOD = {grid(*, *)}, USE = {n*, grid(*, *), i*}
  site 1 (stencil -> sum_row): MOD = {total*}, USE = {n*, grid(*, *), total*,
                                                      i*}
  

The per-array precision report counts how many contexts keep a proper
section instead of collapsing to bottom or whole-array:

  $ ../bin/sidefx.exe sections-report ../programs/stencil.mp
  array        rank          GMOD b/p/w     site MOD b/p/w  partial
  grid            2      3/   1/    2      1/   0/    3      16%
  a               2      4/   2/    0      4/   0/    0     100%
  total: 8 contexts touch an array, 3 (37%) stay sectioned

  $ ../bin/sidefx.exe sections-report ../programs/stencil.mp --json | ../bin/sidefx.exe json-validate
  json: ok

Nested procedures: stats and analysis both handle dP = 3:

  $ ../bin/sidefx.exe stats ../programs/report.mp
  4 procedures, 4 call sites, 4 SCCs
  C: 4 nodes, 4 edges; beta: 2 nodes, 2 edges; mu_f = 0.67, mu_a = 0.75; size ratio N_beta/N_C = 0.50, E_beta/E_C = 0.50
  beta SCCs: 2; beta edges by level: L1=0 L2=2 L3=0
  condensation wavefront: call 4 levels (max width 1); beta 2 levels (max width 1)
  procedures reachable from main: 4 / 4
  nesting depth dP = 3

Execution under the tracing interpreter:

  $ ../bin/sidefx.exe run ../programs/bank.mp
  100
  55
  1155

  $ ../bin/sidefx.exe run ../programs/report.mp
  (truncated after 12288 statements)
  2046
  2

  $ ../bin/sidefx.exe run ../programs/stencil.mp
  0

Differential validation: observed effects within predicted MOD/USE:

  $ ../bin/sidefx.exe check ../programs/bank.mp
  sites executed: 4 / 4; soundness violations: 0
  observed MOD bits: 8; predicted MOD bits: 8 (precision 100%)

  $ ../bin/sidefx.exe check ../programs/report.mp
  sites executed: 4 / 4 (run truncated); soundness violations: 0
  observed MOD bits: 13; predicted MOD bits: 13 (precision 100%)

Interprocedural constant propagation:

  $ ../bin/sidefx.exe constants ../programs/pipeline.mp
  stage2: b = 40 (foldable)
  stage1: a = 39 (foldable)
  

  $ ../bin/sidefx.exe run ../programs/pipeline.mp
  42

The binding multi-graph of the bank program in DOT form:

  $ ../bin/sidefx.exe dot ../programs/bank.mp --graph binding
  digraph binding {
    rankdir=LR;
    node [shape=ellipse, fontname="monospace"];
    f0 [label="deposit.account"];
    f1 [label="apply_interest.account"];
    f1 -> f0 [label="s3"];
  }

Generation is deterministic and generated programs are accepted back:

  $ ../bin/sidefx.exe gen --procs 3 --seed 1 > g.mp
  $ ../bin/sidefx.exe stats g.mp
  4 procedures, 9 call sites, 4 SCCs
  C: 4 nodes, 9 edges; beta: 3 nodes, 2 edges; mu_f = 1.67, mu_a = 1.22; size ratio N_beta/N_C = 0.75, E_beta/E_C = 0.22
  beta SCCs: 3; beta edges by level: L1=2
  condensation wavefront: call 3 levels (max width 2); beta 2 levels (max width 2)
  procedures reachable from main: 4 / 4
  nesting depth dP = 1

Errors are reported with positions:

  $ cat > bad.mp <<'SRC'
  > program p;
  > begin
  >   x := 1;
  > end.
  > SRC
  $ ../bin/sidefx.exe analyze bad.mp
  bad.mp:3:3: unknown variable 'x'
  [1]

Inlining flattens the whole program and preserves its behaviour:

  $ ../bin/sidefx.exe inline ../programs/bank.mp > inlined.mp
  sites: 4 -> 0
  $ ../bin/sidefx.exe run ../programs/bank.mp > before.out
  $ ../bin/sidefx.exe run inlined.mp > after.out
  $ diff before.out after.out

The differential checker reports coverage and precision:

  $ ../bin/sidefx.exe check ../programs/stencil.mp
  sites executed: 2 / 2; soundness violations: 0
  observed MOD bits: 2; predicted MOD bits: 2 (precision 100%)

  $ ../bin/sidefx.exe check ../programs/pipeline.mp
  sites executed: 4 / 4; soundness violations: 0
  observed MOD bits: 4; predicted MOD bits: 4 (precision 100%)

Profiling: the phase table covers the whole pipeline.  Timings vary run
to run, so only the phase names (first column) are asserted:

  $ ../bin/sidefx.exe profile ../examples/profile_demo.mp | awk 'NR>4 && NF {print $1}'
  profile
  frontend.compile
  frontend.parse
  frontend.resolve
  analyze
  info
  callgraph.call
  callgraph.binding
  local
  local.use
  rmod
  ruse
  imod_plus
  iuse_plus
  guse
  gmod
  alias
  mustmod
  summary
  sites

The JSON report's key set is a stable contract (values are not):

  $ ../bin/sidefx.exe profile ../examples/profile_demo.mp --json | grep -o '"[A-Za-z0-9_.]*":' | sort -u
  "L1":
  "alias.pairs":
  "beta_edges":
  "beta_edges_by_level":
  "beta_levels":
  "beta_max_width":
  "beta_nodes":
  "beta_sccs":
  "bitvec.small_ops":
  "bitvec.vector_ops":
  "bitvec.word_ops":
  "call_levels":
  "call_max_width":
  "call_sccs":
  "call_sites":
  "callgraph.beta.edges":
  "callgraph.beta.nodes":
  "callgraph.call.edges":
  "callgraph.call.nodes":
  "children":
  "dataflow.blocks":
  "dataflow.invalidated":
  "dataflow.live_passes":
  "dataflow.procs_solved":
  "dataflow.reach_passes":
  "elapsed_s":
  "file":
  "gc":
  "graph":
  "incremental.edits":
  "incremental.full_fallbacks":
  "incremental.procs_resolved":
  "major_collections":
  "metrics":
  "minor_collections":
  "mustmod.rounds":
  "name":
  "nesting_depth":
  "par.batches":
  "par.chain_downgrades":
  "par.fused_levels":
  "par.tasks":
  "procedures":
  "program":
  "promoted_words":
  "rmod.steps":
  "start_s":
  "top_heap_words":
  "trace":

  $ ../bin/sidefx.exe profile ../examples/profile_demo.mp --json | grep -o '"name":"[a-z_.]*"' | sort -u
  "name":"alias"
  "name":"analyze"
  "name":"callgraph.binding"
  "name":"callgraph.call"
  "name":"frontend.compile"
  "name":"frontend.parse"
  "name":"frontend.resolve"
  "name":"gmod"
  "name":"guse"
  "name":"imod_plus"
  "name":"info"
  "name":"iuse_plus"
  "name":"local"
  "name":"local.use"
  "name":"mustmod"
  "name":"profile"
  "name":"rmod"
  "name":"ruse"
  "name":"sites"
  "name":"summary"

Machine-readable analysis results, self-validated:

  $ ../bin/sidefx.exe analyze ../programs/bank.mp --json | ../bin/sidefx.exe json-validate
  json: ok

  $ ../bin/sidefx.exe analyze ../programs/bank.mp --json | grep -o '"[A-Za-z0-9_.]*":' | sort -u
  "L1":
  "aliases":
  "beta_edges":
  "beta_edges_by_level":
  "beta_levels":
  "beta_max_width":
  "beta_nodes":
  "beta_sccs":
  "call_levels":
  "call_max_width":
  "call_sccs":
  "call_sites":
  "callee":
  "caller":
  "gmod":
  "graph":
  "guse":
  "imod_plus":
  "mod":
  "name":
  "nesting_depth":
  "procedures":
  "program":
  "rmod":
  "sid":
  "sites":
  "use":

  $ ../bin/sidefx.exe profile ../examples/profile_demo.mp --json | ../bin/sidefx.exe json-validate
  json: ok

  $ echo '{"broken":' | ../bin/sidefx.exe json-validate
  json: invalid (at offset 11: unexpected end of input)
  [1]

profile --trace-out writes the span tree as Chrome trace-event JSON
(Perfetto-loadable): one complete event per phase, GC counters in args:

  $ ../bin/sidefx.exe profile ../examples/profile_demo.mp --trace-out trace_events.json >/dev/null 2>/dev/null
  $ ../bin/sidefx.exe json-validate < trace_events.json
  json: ok
  $ grep -o '"traceEvents":\|"displayTimeUnit":\|"ph":"X"\|"gc.major_collections":\|"dur":\|"ts":' trace_events.json | sort -u
  "displayTimeUnit":
  "dur":
  "gc.major_collections":
  "ph":"X"
  "traceEvents":
  "ts":

stats --json additionally runs the analysis and reports per-phase
latency histograms (log2 ns buckets) and GC statistics:

  $ ../bin/sidefx.exe stats ../programs/bank.mp --json | ../bin/sidefx.exe json-validate
  json: ok
  $ ../bin/sidefx.exe stats ../programs/bank.mp --json | grep -o '"gc":\|"histograms":\|"phase.analyze":\|"buckets":\|"sum_ns":\|"minor_collections":\|"top_heap_words":' | sort -u
  "buckets":
  "gc":
  "histograms":
  "minor_collections":
  "phase.analyze":
  "sum_ns":
  "top_heap_words":

--trace works on any command and writes its table to stderr, leaving
stdout untouched:

  $ ../bin/sidefx.exe stats ../programs/bank.mp --trace 2>trace.err
  4 procedures, 4 call sites, 4 SCCs
  C: 4 nodes, 4 edges; beta: 2 nodes, 1 edges; mu_f = 1.33, mu_a = 1.50; size ratio N_beta/N_C = 0.50, E_beta/E_C = 0.25
  beta SCCs: 2; beta edges by level: L1=1
  condensation wavefront: call 4 levels (max width 1); beta 2 levels (max width 1)
  procedures reachable from main: 4 / 4
  nesting depth dP = 1
  $ awk 'NR>1 && NF {print $1}' trace.err
  frontend.compile
  frontend.parse
  frontend.resolve
  callgraph.call
  callgraph.binding

Edit scripts: apply program edits and report analysis deltas.  The
--incremental flag maintains the analysis across edits instead of
re-running it, with identical output by construction:

  $ cat > bank.edits <<'SCRIPT'
  > # touch the audit trail from apply_interest, then mute audit
  > add-assign apply_interest log_count = 9
  > add-call bank audit 3
  > remove-assign audit 0
  > SCRIPT

  $ ../bin/sidefx.exe edit ../programs/bank.mp --script bank.edits
  == edits (3) ==
    1. add-assign apply_interest log_count := 9
    2. add-call bank -> audit/1
    3. remove-assign audit #0
  == GMOD delta ==
    audit        -{log_count}
    deposit      -{log_count}
  == GUSE delta ==
    apply_interest -{log_count}
    audit        -{log_count}
    bank         -{log_count}
    deposit      -{log_count}
  == sites after ==
    s0   bank -> deposit  MOD {balance}  USE {balance}
    s1   bank -> apply_interest  MOD {balance,log_count}  USE {balance,rate}
    s2   deposit -> audit  MOD {}  USE {deposit.amount}
    s3   apply_interest -> deposit  MOD {apply_interest.account,balance}  USE {apply_interest.account,apply_interest.delta,balance}
    s4   bank -> audit  MOD {}  USE {}

  $ ../bin/sidefx.exe edit ../programs/bank.mp --script bank.edits > batch.out
  $ ../bin/sidefx.exe edit ../programs/bank.mp --script bank.edits --incremental > inc.out
  incremental fallback: dirty fraction 4/4 over threshold
  $ diff batch.out inc.out

  $ ../bin/sidefx.exe edit ../programs/bank.mp --script bank.edits --incremental --json | ../bin/sidefx.exe json-validate
  json: ok

  $ ../bin/sidefx.exe edit ../programs/bank.mp --script bank.edits --json | grep -o '"[A-Za-z0-9_.]*":' | sort -u
  "added":
  "callee":
  "caller":
  "edits":
  "fallback_reason":
  "gmod_delta":
  "guse_delta":
  "incremental":
  "mod":
  "proc":
  "program":
  "removed":
  "sid":
  "sites":
  "use":

The incremental engine only trusts its dependency tracking on
pointer-free programs — a points-to solution may shift under any
edit.  The JSON report states the fallback and its reason as data:

  $ echo 'add-assign pointers x = 5' > ptr.edits
  $ ../bin/sidefx.exe edit ../programs/pointers.mp --script ptr.edits --incremental --json > ptr_edit.json
  $ ../bin/sidefx.exe json-validate < ptr_edit.json
  json: ok
  $ grep -o '"incremental":[a-z]*,"fallback_reason":"[^"]*"' ptr_edit.json
  "incremental":true,"fallback_reason":"pointer program: points-to solution may shift"

Batch mode reports no fallback — the field is null:

  $ ../bin/sidefx.exe edit ../programs/pointers.mp --script ptr.edits --json | grep -o '"incremental":[a-z]*,"fallback_reason":[a-z]*'
  "incremental":false,"fallback_reason":null

Bad scripts fail with the offending line:

  $ echo 'add-assign nowhere g0' > bad.edits
  $ ../bin/sidefx.exe edit ../programs/bank.mp --script bad.edits
  bad.edits: line 1: no such procedure: nowhere
  [1]

Parallel analysis (--jobs) is a pure performance knob: output is
bit-identical to the sequential run on every sample program, for both
the human-readable and JSON forms:

  $ for p in ../programs/*.mp; do
  >   ../bin/sidefx.exe analyze "$p" > seq.out
  >   ../bin/sidefx.exe analyze "$p" --jobs 4 > par.out
  >   diff seq.out par.out || echo "MISMATCH: $p"
  > done

  $ ../bin/sidefx.exe analyze ../programs/bank.mp --json > seq.json
  $ ../bin/sidefx.exe analyze ../programs/bank.mp --json --jobs 4 > par.json
  $ diff seq.json par.json

and the parallel JSON report keeps the same stable key set:

  $ ../bin/sidefx.exe analyze ../programs/bank.mp --json --jobs 4 | grep -o '"[A-Za-z0-9_.]*":' | sort -u
  "L1":
  "aliases":
  "beta_edges":
  "beta_edges_by_level":
  "beta_levels":
  "beta_max_width":
  "beta_nodes":
  "beta_sccs":
  "call_levels":
  "call_max_width":
  "call_sccs":
  "call_sites":
  "callee":
  "caller":
  "gmod":
  "graph":
  "guse":
  "imod_plus":
  "mod":
  "name":
  "nesting_depth":
  "procedures":
  "program":
  "rmod":
  "sid":
  "sites":
  "use":

--jobs also applies to profiling and to edit scripts (incremental or
batch), again without changing any output:

  $ ../bin/sidefx.exe edit ../programs/bank.mp --script bank.edits --incremental --jobs 4 > inc4.out
  incremental fallback: dirty fraction 4/4 over threshold
  $ diff inc.out inc4.out

  $ ../bin/sidefx.exe profile ../examples/profile_demo.mp --json --jobs 4 | ../bin/sidefx.exe json-validate
  json: ok

Lint: summary-driven diagnostics with stable codes.  The demo program
triggers all seven codes; exit status is 1 because findings reach the
default warning threshold:

  $ ../bin/sidefx.exe lint ../programs/lint_demo.mp
  ../programs/lint_demo.mp:14:12: warning[SFX002] lint_demo: global 'unread' is written but never read
      hint: delete the variable and the stores into it
  ../programs/lint_demo.mp:19:11: note[SFX003] scale: procedure 'scale' has no global side effects
      hint: it writes only through its reference formals; calls with disjoint actuals can run in parallel
  ../programs/lint_demo.mp:19:34: warning[SFX001] scale: by-reference formal 'dead' (parameter 2) is never modified or used by any invocation
      hint: drop the parameter, or pass it by value
  ../programs/lint_demo.mp:26:11: note[SFX003] stepper: procedure 'stepper' has no global side effects
      hint: it writes only through its reference formals; calls with disjoint actuals can run in parallel
  ../programs/lint_demo.mp:34:11: note[SFX003] outer: procedure 'outer' has no global side effects
      hint: it writes only through its reference formals; calls with disjoint actuals can run in parallel
  ../programs/lint_demo.mp:34:34: warning[SFX001] outer: by-reference formal 'v' (parameter 2) is never modified or used by any invocation
      hint: drop the parameter, or pass it by value
  ../programs/lint_demo.mp:36:8: warning[SFX004] outer: call to 'stepper' may modify 'outer.v' only through alias pair <outer.u, outer.v>
      hint: the alias pair widens MOD beyond DMOD; passing distinct variables restores precision
  ../programs/lint_demo.mp:36:8: warning[SFX004] outer: call to 'stepper' may modify 'total' only through alias pair <outer.u, total>
      hint: the alias pair widens MOD beyond DMOD; passing distinct variables restores precision
  ../programs/lint_demo.mp:36:8: note[SFX009] outer: call to 'stepper' reads and writes 'total', 'outer.u', 'outer.v', and the caller reads the result: a read-modify-write the caller could batch
      hint: hoist the read or batch the updates to cut call-boundary traffic
  ../programs/lint_demo.mp:54:8: note[SFX009] lint_demo: call to 'scale' reads and writes 'total', and the caller reads the result: a read-modify-write the caller could batch
      hint: hoist the read or batch the updates to cut call-boundary traffic
  ../programs/lint_demo.mp:55:8: error[SFX005] lint_demo: arguments 1 and 2 of call to 'outer' may name the same location ('total' and 'total'), and 'outer' modifies formal 'u'
      hint: copy one argument into a temporary before the call
  ../programs/lint_demo.mp:55:8: note[SFX009] lint_demo: call to 'outer' reads and writes 'total', and the caller reads the result: a read-modify-write the caller could batch
      hint: hoist the read or batch the updates to cut call-boundary traffic
  ../programs/lint_demo.mp:57:7: note[SFX007] lint_demo: loop over 'i' is parallelisable: iterations are provably independent
      hint: candidate for data decomposition
  ../programs/lint_demo.mp:58:10: note[SFX009] lint_demo: call to 'stepper' reads and writes 'data', and the caller reads the result: a read-modify-write the caller could batch
      hint: hoist the read or batch the updates to cut call-boundary traffic
  ../programs/lint_demo.mp:60:7: warning[SFX006] lint_demo: loop over 'i' is not parallelisable: 'total' (scalar total written by every iteration)
      hint: privatise the conflicting variables or split the loop
  ../programs/lint_demo.mp:61:10: note[SFX009] lint_demo: call to 'tally' reads and writes 'total', 'data', and the caller reads the result: a read-modify-write the caller could batch
      hint: hoist the read or batch the updates to cut call-boundary traffic
  16 findings: 1 error, 6 warning, 9 note
  [1]

--rules restricts the run to a comma-separated subset:

  $ ../bin/sidefx.exe lint ../programs/lint_demo.mp --rules aliased-actuals,write-only-global
  ../programs/lint_demo.mp:14:12: warning[SFX002] lint_demo: global 'unread' is written but never read
      hint: delete the variable and the stores into it
  ../programs/lint_demo.mp:55:8: error[SFX005] lint_demo: arguments 1 and 2 of call to 'outer' may name the same location ('total' and 'total'), and 'outer' modifies formal 'u'
      hint: copy one argument into a temporary before the call
  2 findings: 1 error, 1 warning, 0 note
  [1]

Notes alone don't reach the error threshold, so the exit status is 0:

  $ ../bin/sidefx.exe lint ../programs/lint_demo.mp --rules pure-proc --severity-threshold error
  ../programs/lint_demo.mp:19:11: note[SFX003] scale: procedure 'scale' has no global side effects
      hint: it writes only through its reference formals; calls with disjoint actuals can run in parallel
  ../programs/lint_demo.mp:26:11: note[SFX003] stepper: procedure 'stepper' has no global side effects
      hint: it writes only through its reference formals; calls with disjoint actuals can run in parallel
  ../programs/lint_demo.mp:34:11: note[SFX003] outer: procedure 'outer' has no global side effects
      hint: it writes only through its reference formals; calls with disjoint actuals can run in parallel
  3 findings: 0 error, 0 warning, 3 note

Unknown rule names are a usage error:

  $ ../bin/sidefx.exe lint ../programs/lint_demo.mp --rules nope
  lint: unknown rule 'nope' (known: unused-formal, write-only-global, pure-proc, alias-inflation, aliased-actuals, loop-parallel, dead-store, rmw-hint, undereferenced-ptr, ptr-formal-store, use-before-init, redundant-store)
  [2]

The statement-level rules run liveness over per-procedure CFGs with the
summary-derived transfer functions (docs/dataflow.md):

  $ ../bin/sidefx.exe lint ../programs/dataflow_demo.mp --rules dead-store,rmw-hint
  ../programs/dataflow_demo.mp:37:8: note[SFX009] outer: call to 'readx' reads and writes 'acc', and the caller reads the result: a read-modify-write the caller could batch
      hint: hoist the read or batch the updates to cut call-boundary traffic
  ../programs/dataflow_demo.mp:42:3: warning[SFX008] dataflow_demo: value stored to 'tmp' is never read: every path definitely overwrites it or ends its lifetime first
      hint: delete the store, or use the value before it is overwritten
  ../programs/dataflow_demo.mp:45:8: note[SFX009] dataflow_demo: call to 'bump' reads and writes 'acc', and the caller reads the result: a read-modify-write the caller could batch
      hint: hoist the read or batch the updates to cut call-boundary traffic
  ../programs/dataflow_demo.mp:46:8: note[SFX009] dataflow_demo: call to 'outer' reads and writes 'acc', 'final', and the caller reads the result: a read-modify-write the caller could batch
      hint: hoist the read or batch the updates to cut call-boundary traffic
  4 findings: 0 error, 1 warning, 3 note
  [1]

The dataflow command summarises each procedure's CFG and solver work:

  $ ../bin/sidefx.exe dataflow ../programs/dataflow_demo.mp
  == dataflow: dataflow_demo ==
  dataflow_demo   2 blocks   1 edges   7 instrs   6 defs  live 2 passes, reach 2 passes
  bump           2 blocks   1 edges   1 instrs   1 defs  live 2 passes, reach 2 passes
  readx          2 blocks   1 edges   1 instrs   1 defs  live 2 passes, reach 2 passes
  outer          2 blocks   1 edges   3 instrs   3 defs  live 2 passes, reach 2 passes

  $ ../bin/sidefx.exe dataflow ../programs/dataflow_demo.mp --json | ../bin/sidefx.exe json-validate
  json: ok

The must command prints the interprocedural must-modify summaries —
the intersection-over-paths dual of GMOD (docs/mustmod.md).  'prime'
keeps its by-ref formal (written in both branches of the if); 'accum'
reads its formal but never writes it:

  $ ../bin/sidefx.exe must ../programs/mustmod_demo.mp
  MUSTMOD(mustmod_demo) = {total, seed, scratch}
  MUSTMOD(prime) = {total, prime.slot}
  MUSTMOD(accum) = {total}
  MUSTMOD(tally) = {total}
  

  $ ../bin/sidefx.exe must ../programs/mustmod_demo.mp --json | ../bin/sidefx.exe json-validate
  json: ok

  $ ../bin/sidefx.exe must ../programs/mustmod_demo.mp --json | grep -o '"[A-Za-z0-9_.]*":' | sort -u
  "demoted":
  "gmod":
  "intra":
  "mustmod":
  "name":
  "procedures":
  "program":
  "rounds":
  "subset_of_gmod":

The pooled run is byte-identical:

  $ ../bin/sidefx.exe must ../programs/mustmod_demo.mp > must_seq.out
  $ ../bin/sidefx.exe must ../programs/mustmod_demo.mp --jobs 4 > must_par.out
  $ diff must_seq.out must_par.out

MUSTMOD feeds two statement-level rules: SFX012 (a variable may be
read — directly or through a by-reference pass to a reading callee —
before any definition reaches) and SFX013 (a store a call definitely
overwrites before any use):

  $ ../bin/sidefx.exe lint ../programs/mustmod_demo.mp --rules use-before-init,redundant-store
  ../programs/mustmod_demo.mp:44:3: warning[SFX012] tally: 'ghost' may be read before initialization: no definition reaches this statement
      hint: assign the variable on every path before it is read
  ../programs/mustmod_demo.mp:45:8: warning[SFX012] tally: 'raw' is passed by reference before initialization, and 'accum' may read formal 'a' before definitely writing it
      hint: assign the variable before the call, or make the callee write the formal first
  ../programs/mustmod_demo.mp:50:3: warning[SFX013] mustmod_demo: value stored to 'scratch' is redundant: the call to 'prime' at site 0 definitely overwrites it before any use
      hint: delete the store, or move it after the call
  3 findings: 0 error, 3 warning, 0 note
  [1]

must facts join the explain grammar with every-path witness chains;
'accum' only reads its formal, so that fact correctly fails to hold:

  $ ../bin/sidefx.exe explain ../programs/mustmod_demo.mp --fact must:prime:slot
  'slot' ∈ MUSTMOD(prime): prime
  prime writes 'slot' on every path to exit at ../programs/mustmod_demo.mp:28:5

  $ ../bin/sidefx.exe explain ../programs/mustmod_demo.mp --fact must:accum:a
  explain: fact 'must:accum:a' does not hold
  [1]

The JSON report is self-validating and its key set is a stable
contract:

  $ ../bin/sidefx.exe lint ../programs/lint_demo.mp --json | ../bin/sidefx.exe json-validate
  json: ok

  $ ../bin/sidefx.exe lint ../programs/lint_demo.mp --json | grep -o '"[A-Za-z0-9_.]*":' | sort -u
  "code":
  "col":
  "counts":
  "error":
  "file":
  "findings":
  "hint":
  "line":
  "message":
  "note":
  "program":
  "rule":
  "rules":
  "scope":
  "severity":
  "warning":
  "witness":

Lint rules run on the domain pool under --jobs, with byte-identical
output:

  $ ../bin/sidefx.exe lint ../programs/lint_demo.mp --json > lint_seq.json
  [1]
  $ ../bin/sidefx.exe lint ../programs/lint_demo.mp --json --jobs 4 > lint_par.json
  [1]
  $ diff lint_seq.json lint_par.json

explain reconstructs the derivation of any analysis fact as a witness
chain ending at source-level evidence:

  $ ../bin/sidefx.exe explain ../programs/lint_demo.mp --fact rmod:stepper:cell
  'stepper.cell' ∈ RMOD
  stepper writes 'cell' at ../programs/lint_demo.mp:28:3

  $ ../bin/sidefx.exe explain ../programs/lint_demo.mp --fact gmod:tally:total
  'total' ∈ GMOD(tally): tally
  tally writes 'total' at ../programs/lint_demo.mp:48:3

  $ ../bin/sidefx.exe explain ../programs/lint_demo.mp --fact alias:outer:u:v
  <u, v> ∈ ALIAS(outer)
  <u, v> in outer: 'total' is passed by reference at both args 0 and 1 of site 1 at ../programs/lint_demo.mp:55:8

diag facts print the matching lint findings with their witness blocks:

  $ ../bin/sidefx.exe explain ../programs/lint_demo.mp --fact diag:SFX005
  ../programs/lint_demo.mp:55:8: error[SFX005] lint_demo: arguments 1 and 2 of call to 'outer' may name the same location ('total' and 'total'), and 'outer' modifies formal 'u'
      hint: copy one argument into a temporary before the call
      witness:
        arguments 1 and 2 both pass 'total'
        'outer.u' ∈ RMOD
        'outer.u' is bound by reference to 'stepper.cell' at site 5 (arg 0) at ../programs/lint_demo.mp:36:8
        stepper writes 'cell' at ../programs/lint_demo.mp:28:3

Unknown grammar exits 2; a fact that does not hold exits 1:

  $ ../bin/sidefx.exe explain ../programs/lint_demo.mp --fact nonsense
  explain: unrecognised fact 'nonsense' (expected gmod:P:V | guse:P:V | must:P:V | rmod:P:F | ruse:P:F | alias:P:X:Y | diag:CODE[:FILTER])
  [2]
  $ ../bin/sidefx.exe explain ../programs/lint_demo.mp --fact gmod:scale:unread
  explain: fact 'gmod:scale:unread' does not hold
  [1]

--all enumerates every GMOD/GUSE, RMOD/RUSE and alias fact plus every
lint finding and demands a witness for each — the completeness
contract, machine-checked:

  $ ../bin/sidefx.exe explain ../programs/lint_demo.mp --all
  explained 60/60 facts
  $ ../bin/sidefx.exe explain ../programs/lint_demo.mp --all --json | ../bin/sidefx.exe json-validate
  json: ok

dot --highlight lint paints SFX003-pure procedures palegreen and
alias-inflated call edges red:

  $ ../bin/sidefx.exe dot ../programs/lint_demo.mp --highlight lint
  digraph callgraph {
    rankdir=LR;
    node [shape=box, fontname="monospace"];
    p0 [label="lint_demo\nlevel 0", style=bold];
    p1 [label="scale\nlevel 1", style=filled, fillcolor=palegreen];
    p2 [label="stepper\nlevel 1", style=filled, fillcolor=palegreen];
    p3 [label="outer\nlevel 1", style=filled, fillcolor=palegreen];
    p4 [label="logit\nlevel 1"];
    p5 [label="tally\nlevel 1"];
    p0 -> p1 [label="s0"];
    p0 -> p3 [label="s1"];
    p0 -> p4 [label="s2"];
    p0 -> p2 [label="s3"];
    p0 -> p5 [label="s4"];
    p3 -> p2 [label="s5", color=red, fontcolor=red];
  }

edit --lint reports the diagnostic delta of an edit script: writing a
global from a previously pure procedure retracts its SFX003 note.  The
incremental path produces the identical report:

  $ cat > pure.mp <<'SRC'
  > program pure;
  > var g : int;
  > var h : int;
  > 
  > procedure q(var x : int);
  > begin
  >   x := x + 1;
  > end;
  > 
  > begin
  >   g := 0;
  >   call q(g);
  >   h := g;
  >   write h;
  > end.
  > SRC
  $ cat > pure.edits <<'SCRIPT'
  > add-assign q g = 1
  > SCRIPT

  $ ../bin/sidefx.exe edit pure.mp --script pure.edits --lint
  == edits (1) ==
    1. add-assign q g := 1
  == GMOD delta ==
    q            +{g}
  == GUSE delta ==
    (none)
  == sites after ==
    s0   pure -> q  MOD {g}  USE {g}
  == lint delta ==
    - note[SFX003] q: procedure 'q' has no global side effects
          hint: it writes only through its reference formals; calls with disjoint actuals can run in parallel

  $ ../bin/sidefx.exe edit pure.mp --script pure.edits --lint > lint_batch.out
  $ ../bin/sidefx.exe edit pure.mp --script pure.edits --lint --incremental > lint_inc.out
  incremental fallback: dirty fraction 2/2 over threshold
  $ diff lint_batch.out lint_inc.out

  $ ../bin/sidefx.exe edit pure.mp --script pure.edits --lint --incremental --json | ../bin/sidefx.exe json-validate
  json: ok

  $ ../bin/sidefx.exe edit pure.mp --script pure.edits --lint --json | grep -o '"lint[a-z_]*":' | sort -u
  "lint_added":
  "lint_removed":

Pointers feed the §5 alias computation through a flow-insensitive
points-to pass.  The default Steensgaard (unification) tier merges
what the Andersen (inclusion) tier keeps apart — on the funnel demo
that is 8 vs 6 alias pairs:

  $ ../bin/sidefx.exe ptsto ../programs/pointers.mp
  points-to (steensgaard): 1 heap site, size 22
  points-to (steensgaard):
    p -> {x, y, bump.cell, through.cell, through.other, drain.sink, new#0@pointers}
    q -> {x, y, bump.cell, through.cell, through.other, drain.sink, new#0@pointers}
    r -> {x, y, bump.cell, through.cell, through.other, drain.sink, new#0@pointers}
    pp -> {p}
  alias bump: <x, bump.cell>
  alias bump: <y, bump.cell>
  alias through: <x, through.cell>
  alias through: <y, through.cell>
  alias through: <y, through.other>
  alias through: <through.cell, through.other>
  alias drain: <x, drain.sink>
  alias drain: <y, drain.sink>
  8 §5 alias pairs

  $ ../bin/sidefx.exe ptsto ../programs/pointers.mp --tier=andersen
  points-to (andersen): 1 heap site, size 15
  points-to (andersen):
    p -> {x, bump.cell, drain.sink}
    q -> {y, through.cell, through.other, drain.sink}
    r -> {x, y, bump.cell, through.cell, through.other, drain.sink, new#0@pointers}
    pp -> {p}
  alias bump: <x, bump.cell>
  alias through: <y, through.cell>
  alias through: <y, through.other>
  alias through: <through.cell, through.other>
  alias drain: <x, drain.sink>
  alias drain: <y, drain.sink>
  6 §5 alias pairs

  $ ../bin/sidefx.exe ptsto ../programs/pointers.mp --json | ../bin/sidefx.exe json-validate
  json: ok

The interpreter doubles as a soundness oracle for the pointer tiers:
every observed dereference target must be predicted, every observed
alias must be a computed §5 pair:

  $ ../bin/sidefx.exe check ../programs/pointers.mp --ptsto=andersen
  sites executed: 3 / 3; soundness violations: 0
  observed MOD bits: 2; predicted MOD bits: 13 (precision 15%)

Alias pairs that enter §5 through a dereference actual carry a
points-to provenance reason:

  $ ../bin/sidefx.exe explain ../programs/pointers.mp --fact alias:bump:x:cell
  <x, cell> ∈ ALIAS(bump)
  <x, cell> in bump: the dereference actual '*p' at arg 0 of site 0 may name the paired cell (points-to projection) at ../programs/pointers.mp:37:8

The pointer lint rules: SFX010 flags a pointer whose value never
reaches a dereference; SFX011 flags a store through a pointer that may
modify a by-reference formal without naming it:

  $ ../bin/sidefx.exe lint ../programs/ptr_lint.mp
  ../programs/ptr_lint.mp:10:5: warning[SFX002] ptrlint: global 'dead' is written but never read
      hint: delete the variable and the stores into it
  ../programs/ptr_lint.mp:10:5: warning[SFX010] ptrlint: pointer 'dead' is never dereferenced: no use of its value ever reaches a '*'
      hint: delete the pointer, or dereference it where it is used
  ../programs/ptr_lint.mp:17:4: warning[SFX011] poke: store through 'a' may modify by-reference formal 'out': the caller's actual changes without naming it
      hint: write the formal directly, or document that the pointer aims at it
  3 findings: 0 error, 3 warning, 0 note
  [1]

  $ ../bin/sidefx.exe explain ../programs/ptr_lint.mp --fact diag:SFX011
  ../programs/ptr_lint.mp:17:4: warning[SFX011] poke: store through 'a' may modify by-reference formal 'out': the caller's actual changes without naming it
      hint: write the formal directly, or document that the pointer aims at it
      witness:
        points-to: the 1-fold dereference of 'poke.a' may name {g, poke.out}

A script that fails to parse reports the failing line — as data in
JSON mode, and in the text rendering:

  $ cat > bad.edits <<'SCRIPT'
  > add-assign deposit balance = 3
  > bogus nonsense here
  > SCRIPT

  $ ../bin/sidefx.exe edit ../programs/bank.mp --script bad.edits
  bad.edits: line 2: cannot parse edit "bogus nonsense here" (commands: add-assign, remove-assign, add-call, remove-call, retarget-call, add-proc, remove-proc)
  [1]

  $ ../bin/sidefx.exe edit ../programs/bank.mp --script bad.edits --json
  {"error":{"kind":"script-parse","script":"bad.edits","line":2,"message":"cannot parse edit \"bogus nonsense here\" (commands: add-assign, remove-assign, add-call, remove-call, retarget-call, add-proc, remove-proc)"}}
  [1]
