The analysis server speaks one JSON object per line over stdio (or a
Unix socket); docs/serve.md has the full schema.  A scripted session
covering every query class, an edit with its lint delta, and a
provenance query:

  $ printf '%s\n' \
  >   '{"id":1,"op":"query","program":"demo","what":"gmod","proc":"logit"}' \
  >   '{"id":2,"op":"query","program":"demo","what":"guse","proc":"tally"}' \
  >   '{"id":3,"op":"query","program":"demo","what":"rmod","proc":"scale","var":"a"}' \
  >   '{"id":4,"op":"query","program":"demo","what":"ruse","proc":"tally","var":"cell"}' \
  >   '{"id":5,"op":"query","program":"demo","what":"alias","proc":"outer"}' \
  >   '{"id":6,"op":"query","program":"demo","what":"must","proc":"tally"}' \
  >   '{"id":7,"op":"query","program":"demo","what":"purity","proc":"scale"}' \
  >   '{"id":8,"op":"query","program":"demo","what":"mod","site":0}' \
  >   '{"id":9,"op":"query","program":"demo","what":"use","site":0}' \
  >   '{"id":10,"op":"edit","program":"demo","session":"s","script":"add-assign logit total = 3","lint":true}' \
  >   '{"id":11,"op":"query","program":"demo","session":"s","what":"lint-delta"}' \
  >   '{"id":12,"op":"explain","program":"demo","fact":"gmod:logit:unread"}' \
  >   '{"id":13,"op":"shutdown"}' \
  > | ../bin/sidefx.exe serve --load demo=../programs/lint_demo.mp
  {"id":1,"ok":true,"result":{"proc":"logit","vars":["unread"]}}
  {"id":2,"ok":true,"result":{"proc":"tally","vars":["tally.cell","total"]}}
  {"id":3,"ok":true,"result":{"proc":"scale","var":"a","member":true}}
  {"id":4,"ok":true,"result":{"proc":"tally","var":"cell","member":true}}
  {"id":5,"ok":true,"result":{"proc":"outer","pairs":[["total","outer.u"],["total","outer.v"],["outer.u","outer.v"]]}}
  {"id":6,"ok":true,"result":{"proc":"tally","vars":["tally.cell","total"],"intra":["tally.cell","total"],"demoted":["data"]}}
  {"id":7,"ok":true,"result":{"proc":"scale","pure":true}}
  {"id":8,"ok":true,"result":{"site":0,"vars":["total"]}}
  {"id":9,"ok":true,"result":{"site":0,"vars":["total"]}}
  {"id":10,"ok":true,"result":{"program":"demo","session":"s","edits":["add-assign logit total := 3"],"gmod_delta":[{"proc":"logit","added":["total"],"removed":[]}],"guse_delta":[],"fallbacks":0,"procs_resolved":2,"lint_added":[{"code":"SFX009","rule":"rmw-hint","severity":"note","file":"<none>","line":0,"col":0,"scope":"lint_demo","message":"call to 'logit' reads and writes 'total', and the caller reads the result: a read-modify-write the caller could batch","hint":"hoist the read or batch the updates to cut call-boundary traffic","witness":["the call reads 'total':","'total' is read when evaluating the arguments of site 2","the call writes 'total':","call to 'logit' at site 2 may modify 'total' directly","'total' ∈ GMOD(logit): logit","logit writes 'total'","'total' is live after the call"]}],"lint_removed":[]}}
  {"id":11,"ok":true,"result":{"lint_added":[{"code":"SFX009","rule":"rmw-hint","severity":"note","file":"<none>","line":0,"col":0,"scope":"lint_demo","message":"call to 'logit' reads and writes 'total', and the caller reads the result: a read-modify-write the caller could batch","hint":"hoist the read or batch the updates to cut call-boundary traffic","witness":["the call reads 'total':","'total' is read when evaluating the arguments of site 2","the call writes 'total':","call to 'logit' at site 2 may modify 'total' directly","'total' ∈ GMOD(logit): logit","logit writes 'total'","'total' is live after the call"]}],"lint_removed":[]}}
  {"id":12,"ok":true,"result":{"program":"demo","fact":"gmod:logit:unread","witness":["'unread' ∈ GMOD(logit): logit","logit writes 'unread' at demo:42:3"]}}
  {"id":13,"ok":true,"result":{"stopping":true}}

Malformed and hostile lines get structured errors — the id is
recovered whenever the line was a JSON object, and the connection
survives every one of them (the final valid query still answers):

  $ printf '%s\n' \
  >   'this is not JSON' \
  >   '{"id":42,"op":"frobnicate"}' \
  >   '{"id":43,"op":"query","program":"nope","what":"gmod","proc":"x"}' \
  >   '{"id":44,"op":"query","program":"demo","what":"gmod","proc":"nosuch"}' \
  >   '{"id":45,"op":"query","program":"demo","what":"mod","site":999}' \
  >   '{"id":46,"op":"edit","program":"demo","session":"s","script":"frob the knob"}' \
  >   '{"id":47,"op":"explain","program":"demo","fact":"gmod p1 x"}' \
  >   '{"op":"load"' \
  >   '{"id":48,"op":"query","program":"demo","what":"gmod","proc":"logit"}' \
  >   '{"id":49,"op":"shutdown"}' \
  > | ../bin/sidefx.exe serve --load demo=../programs/lint_demo.mp
  {"id":null,"ok":false,"error":"bad JSON: at offset 0: expected 'true'"}
  {"id":42,"ok":false,"error":"unknown op 'frobnicate' (expected load | unload | query | edit | explain | stats | shutdown)"}
  {"id":43,"ok":false,"error":"unknown program 'nope'"}
  {"id":44,"ok":false,"error":"unknown procedure 'nosuch'"}
  {"id":45,"ok":false,"error":"no such site: 999"}
  {"id":46,"ok":false,"error":"bad edit script: line 1: cannot parse edit \"frob the knob\" (commands: add-assign, remove-assign, add-call, remove-call, retarget-call, add-proc, remove-proc)"}
  {"id":47,"ok":false,"error":"unrecognised fact 'gmod p1 x' (expected gmod:P:V | guse:P:V | must:P:V | rmod:P:F | ruse:P:F | alias:P:X:Y | diag:CODE[:FILTER])"}
  {"id":null,"ok":false,"error":"bad JSON: at offset 12: expected ',' or '}'"}
  {"id":48,"ok":true,"result":{"proc":"logit","vars":["unread"]}}
  {"id":49,"ok":true,"result":{"stopping":true}}

The response JSON key set is a stable contract (values are not): a
session touching load, source, stats, explain --all, and unload emits
exactly these keys:

  $ printf '%s\n' \
  >   '{"id":1,"op":"load","program":"tiny","source":"program t; var g : int; begin g := 1; end."}' \
  >   '{"id":2,"op":"query","program":"tiny","what":"source"}' \
  >   '{"id":3,"op":"stats"}' \
  >   '{"id":4,"op":"explain","program":"demo","all":true}' \
  >   '{"id":5,"op":"unload","program":"tiny"}' \
  >   '{"id":6,"op":"shutdown"}' \
  > | ../bin/sidefx.exe serve --load demo=../programs/lint_demo.mp \
  > | grep -o '"[A-Za-z0-9_.]*":' | sort -u
  "analyzed":
  "call_levels":
  "call_max_width":
  "count":
  "edits":
  "fact":
  "facts":
  "id":
  "latency":
  "load":
  "missing":
  "missing_facts":
  "name":
  "ok":
  "p50_ns":
  "p95_ns":
  "p99_ns":
  "procedures":
  "program":
  "programs":
  "query.source":
  "recommended_domain_count":
  "requests":
  "result":
  "serve.load_s":
  "serve.query.source_s":
  "sessions":
  "sites":
  "source":
  "stopping":
  "total":
  "unloaded":
  "witness":
