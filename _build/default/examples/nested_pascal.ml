(* Lexical nesting, §3.3 and §4: a Pascal-style program with procedures
   three levels deep.

   Demonstrates (1) the IMOD nesting extension — a nested procedure's
   writes to its parent's locals and to globals count as the parent's;
   (2) the binding multi-graph rule for a formal used as an actual
   inside a nested procedure; and (3) that the multi-level findgmod is
   genuinely needed: plain Figure 2 run on the same program computes a
   different (wrong) GMOD.

   Run with:  dune exec examples/nested_pascal.exe *)

let source =
  {|program report;
var total, lines : int;

procedure format_page(var width : int);
var header : int;

  procedure emit(var w : int);

    procedure count();
    begin
      lines := lines + 1;   // global
      header := header + 1; // local of format_page, two levels up
    end;

  begin
    call count();
    w := w - 1;             // modifies emit's formal
    if w > 0 then
      call emit(w);         // recursion through the formal
    end;
  end;

begin
  header := 0;
  call emit(width);         // format_page's formal passed inside
  total := total + header;
end;

begin
  lines := 0;
  total := 0;
  call format_page(lines);
end.
|}

let () =
  let prog = Frontend.Sema.compile_exn ~file:"report.mp" source in
  Format.printf "nesting depth dP = %d@.@." (Ir.Prog.max_level prog);
  Ir.Prog.iter_procs prog (fun pr ->
      Format.printf "level %d: %s@." pr.Ir.Prog.level pr.Ir.Prog.pname);

  let t = Core.Analyze.run prog in
  Format.printf "@.-- IMOD with the nesting extension --@.";
  Ir.Prog.iter_procs prog (fun pr ->
      Format.printf "IMOD(%s) = %a@." pr.Ir.Prog.pname (Ir.Pp.pp_var_set prog)
        t.Core.Analyze.imod.(pr.Ir.Prog.pid));

  Format.printf "@.-- RMOD over the binding multi-graph --@.";
  Format.printf "%a@." Core.Rmod.pp t.Core.Analyze.rmod;

  Format.printf "@.-- GMOD: multi-level findgmod vs plain Figure 2 --@.";
  let flat = Core.Analyze.run ~force_flat:true prog in
  Ir.Prog.iter_procs prog (fun pr ->
      let pid = pr.Ir.Prog.pid in
      let multi = t.Core.Analyze.gmod.(pid) and plain = flat.Core.Analyze.gmod.(pid) in
      Format.printf "GMOD(%s) = %a%s@." pr.Ir.Prog.pname (Ir.Pp.pp_var_set prog) multi
        (if Bitvec.equal multi plain then ""
         else
           Format.asprintf "   [plain Figure 2 would wrongly report %a]"
             (Ir.Pp.pp_var_set prog) plain));

  let sid = (List.hd (Ir.Prog.sites_of prog prog.Ir.Prog.main)).Ir.Prog.sid in
  Format.printf "@.MOD(main's call format_page(lines)) = %a@."
    (Ir.Pp.pp_var_set prog)
    (Core.Analyze.mod_of_site t sid);

  (* Part 2: a minimal program on which plain Figure 2 is actually
     wrong.  outer, helper and walker form one call-graph SCC; helper
     writes outer's local v.  When the DFS reaches walker, its edge to
     helper is a cross edge inside the open component, so Figure 2 only
     updates lowlink — and the component fix-up distributes
     GMOD[outer] ∖ LOCAL[outer], which strips v.  The multi-level
     algorithm closes the deeper component {helper, walker} separately
     and keeps v. *)
  let counter =
    {|program demo;
var g : int;
procedure outer();
var v : int;
  procedure helper(var x : int);
  begin
    v := v + 1;
    x := 0;
    call outer();
  end;
  procedure walker();
  begin
    call helper(g);
  end;
begin
  call helper(g);
  call walker();
end;
begin
  call outer();
end.
|}
  in
  let prog2 = Frontend.Sema.compile_exn ~file:"demo.mp" counter in
  let multi = Core.Analyze.run prog2 in
  let plain = Core.Analyze.run ~force_flat:true prog2 in
  Format.printf
    "@.-- why the multi-level algorithm exists: a 4-procedure counterexample --@.";
  Ir.Prog.iter_procs prog2 (fun pr ->
      let pid = pr.Ir.Prog.pid in
      let m = multi.Core.Analyze.gmod.(pid) and p = plain.Core.Analyze.gmod.(pid) in
      Format.printf "GMOD(%s): multi-level = %a%s@." pr.Ir.Prog.pname
        (Ir.Pp.pp_var_set prog2) m
        (if Bitvec.equal m p then ""
         else Format.asprintf ", plain Figure 2 = %a  <-- misses outer.v"
             (Ir.Pp.pp_var_set prog2) p))
