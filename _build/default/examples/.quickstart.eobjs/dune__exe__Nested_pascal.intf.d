examples/nested_pascal.mli:
