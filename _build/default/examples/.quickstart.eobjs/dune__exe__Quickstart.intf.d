examples/quickstart.mli:
