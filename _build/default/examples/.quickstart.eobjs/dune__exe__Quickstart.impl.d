examples/quickstart.ml: Core Format Frontend Ir Option
