examples/nested_pascal.ml: Array Bitvec Core Format Frontend Ir List
