examples/optimizer.ml: Bitvec Core Format Frontend Int Ipcp Ir List Set
