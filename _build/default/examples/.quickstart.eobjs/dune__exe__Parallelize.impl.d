examples/parallelize.ml: Core Format Frontend Ir List Sections
