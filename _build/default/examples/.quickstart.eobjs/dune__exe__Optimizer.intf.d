examples/optimizer.mli:
