examples/parallelize.mli:
