(* The §6 motivation, end to end: decide whether loops whose bodies
   call procedures can be parallelised.

   Bit-level summaries report "update_row modifies A" — every iteration
   seems to write the same object, so no loop with a call can ever be
   parallelised.  Regular sections report "update_row modifies row i of
   A", which separates iterations and unlocks data decomposition.

   Run with:  dune exec examples/parallelize.exe *)

let source =
  {|program stencil;
var n : int;
var grid : array[64, 64] of int;
var total, i : int;

// Writes only row i: iterations over i are independent.
procedure relax_row(var a : array[64, 64] of int; i : int);
var j : int;
begin
  for j := 2 to n - 1 do
    a[i, j] := (a[i, j - 1] + a[i, j + 1]) / 2;
  end;
end;

// Writes row i but reads rows i-1 and i+1: loop-carried dependence.
procedure blur_row(var a : array[64, 64] of int; i : int);
var j : int;
begin
  for j := 1 to n do
    a[i, j] := (a[i - 1, j] + a[i + 1, j]) / 2;
  end;
end;

// Accumulates into a shared scalar: never parallel.
procedure sum_row(i : int);
var j : int;
begin
  for j := 1 to n do
    total := total + grid[i, j];
  end;
end;

begin
  for i := 1 to n do
    call relax_row(grid, i);
  end;
  for i := 2 to n - 1 do
    call blur_row(grid, i);
  end;
  for i := 1 to n do
    call sum_row(i);
  end;
end.
|}

let () =
  let prog = Frontend.Sema.compile_exn ~file:"stencil.mp" source in
  let t = Sections.Analyze_sections.run prog in
  let main = Ir.Prog.proc prog prog.Ir.Prog.main in

  (* Also run the bit-level analysis for contrast. *)
  let bits = Core.Analyze.run prog in

  let loops =
    List.filter_map
      (function
        | Ir.Stmt.For (ivar, _, _, body) -> Some (ivar, body)
        | _ -> None)
      main.Ir.Prog.body
  in
  List.iteri
    (fun k (ivar, body) ->
      let callee_name =
        match Ir.Stmt.call_sites body with
        | sid :: _ ->
          (Ir.Prog.proc prog (Ir.Prog.site prog sid).Ir.Prog.callee).Ir.Prog.pname
        | [] -> "<none>"
      in
      Format.printf "== loop %d: for %s, body calls %s ==@." (k + 1)
        (Ir.Pp.var_name prog ivar) callee_name;

      (* Bit-level verdict: the callee's MOD contains the whole array,
         so iterations always look dependent. *)
      (match Ir.Stmt.call_sites body with
      | sid :: _ ->
        Format.printf "  bit-level MOD of the call: %a  ->  cannot parallelise@."
          (Ir.Pp.pp_var_set prog)
          (Core.Analyze.mod_of_site bits sid)
      | [] -> ());

      (* Sectioned verdict. *)
      let mod_map, use_map =
        Sections.Analyze_sections.loop_summary t ~proc:main.Ir.Prog.pid ~ivar ~body
      in
      Format.printf "  sectioned MOD of one iteration: %a@."
        (Sections.Secmap.pp prog) mod_map;
      Format.printf "  sectioned USE of one iteration: %a@."
        (Sections.Secmap.pp prog) use_map;
      let verdict = Sections.Deps.analyze_loop prog ~ivar ~mod_map ~use_map in
      if verdict.Sections.Deps.parallel then
        Format.printf "  verdict: PARALLELISABLE (iterations touch disjoint sections)@.@."
      else begin
        Format.printf "  verdict: sequential —@.";
        List.iter
          (fun (_, reason) -> Format.printf "    %s@." reason)
          verdict.Sections.Deps.conflicts;
        Format.printf "@."
      end)
    loops
