(* Quickstart: compile a MiniProc program and print every analysis
   artifact the library produces — RMOD (Figure 1), GMOD/GUSE
   (Figure 2), alias pairs, and per-call-site MOD/USE (§5).

   Run with:  dune exec examples/quickstart.exe *)

let source =
  {|program bank;
var balance, rate, log_count : int;

procedure audit(amount : int);
begin
  log_count := log_count + 1;
  write amount;
end;

procedure deposit(var account : int; amount : int);
begin
  account := account + amount;
  call audit(amount);
end;

procedure apply_interest(var account : int);
var delta : int;
begin
  delta := account * rate / 100;
  call deposit(account, delta);
end;

begin
  balance := 1000;
  rate := 5;
  call deposit(balance, 100);
  call apply_interest(balance);
end.
|}

let () =
  (* Front end: text -> resolved program. *)
  let prog = Frontend.Sema.compile_exn ~file:"bank.mp" source in
  Format.printf "Parsed %d procedures, %d call sites, %d variables.@.@."
    (Ir.Prog.n_procs prog) (Ir.Prog.n_sites prog) (Ir.Prog.n_vars prog);

  (* The whole pipeline in one call. *)
  let t = Core.Analyze.run prog in
  Format.printf "%a@." Core.Analyze.pp_report t;

  (* Direct access to individual results. *)
  let deposit = Option.get (Ir.Prog.find_proc prog "deposit") in
  Format.printf "RMOD(deposit) = %a   (its 'var account' parameter is modified)@."
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
       (fun ppf vid -> Format.pp_print_string ppf (Ir.Prog.var prog vid).Ir.Prog.vname))
    (Core.Rmod.rmod_of_proc t.Core.Analyze.rmod deposit.Ir.Prog.pid);

  (* MOD of the first call in main: deposit(balance, 100). *)
  let sid =
    match Ir.Prog.sites_of prog prog.Ir.Prog.main with
    | s :: _ -> s.Ir.Prog.sid
    | [] -> assert false
  in
  Format.printf "MOD(main's first call) = %a@."
    (Ir.Pp.pp_var_set prog)
    (Core.Analyze.mod_of_site t sid);
  Format.printf
    "@.An optimizer can now keep 'rate' in a register across that call:@.\
     it is in USE but not in MOD of the call site.@."
