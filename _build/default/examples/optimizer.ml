(* A toy optimizer showing why §2 says call-site MOD/USE sets "should
   lead to improved optimization".

   The optimizer performs register caching over main's statement list:
   a scalar loaded once stays in a register until something may write
   it.  Without interprocedural analysis every call kills every cached
   value (the compiler "must assume that the called procedure both uses
   and modifies every variable it can see").  With MOD(s) per call
   site, only the variables the callee may actually modify are killed.

   Run with:  dune exec examples/optimizer.exe *)

let source =
  {|program solver;
var x, y, tolerance, iterations, residual : int;

procedure log_progress(step : int);
begin
  write step;
  write residual;
end;

procedure refine(var value : int);
begin
  value := value - value / tolerance;
  residual := residual - 1;
end;

procedure damp(factor : int);
begin
  residual := residual - residual / factor;
end;

begin
  x := 1000;
  y := 2000;
  tolerance := 10;
  residual := 100;
  iterations := 0;
  while residual > 0 do
    call refine(x);
    call damp(4);
    iterations := iterations + 1;
    call log_progress(iterations);
    y := y + x / tolerance;
  end;
  call damp(4);
  write y;
end.
|}

module Int_set = Set.Make (Int)

(* Count register reloads in a straight-line walk of the statements:
   every scalar read that is not cached costs a load; writes update the
   cache; [kill] says what a call invalidates. *)
let count_loads prog body ~kill =
  let loads = ref 0 in
  let cached = ref Int_set.empty in
  let read v =
    if not (Int_set.mem v !cached) then begin
      incr loads;
      cached := Int_set.add v !cached
    end
  in
  let write v = cached := Int_set.add v !cached in
  let rec stmt (s : Ir.Stmt.t) =
    List.iter read (Frontend.Local.luse_stmt prog s);
    List.iter write (Frontend.Local.lmod_stmt prog s);
    match s with
    | Ir.Stmt.Call sid -> cached := Int_set.diff !cached (kill sid)
    | Ir.Stmt.If (_, a, b) ->
      List.iter stmt a;
      List.iter stmt b
    | Ir.Stmt.While (_, b) | Ir.Stmt.For (_, _, _, b) ->
      (* One symbolic pass through the body, then the kills of the body
         apply to the loop-exit state as well. *)
      List.iter stmt b
    | Ir.Stmt.Assign _ | Ir.Stmt.Read _ | Ir.Stmt.Write _ -> ()
  in
  List.iter stmt body;
  !loads

let () =
  let prog = Frontend.Sema.compile_exn ~file:"solver.mp" source in
  let t = Core.Analyze.run prog in
  (* Interprocedural constant propagation on the same intermediates:
     callees invoked with the same constants could be specialised. *)
  let ipcp = Ipcp.analyze t.Core.Analyze.info ~imod_plus:t.Core.Analyze.imod_plus in
  let main = Ir.Prog.proc prog prog.Ir.Prog.main in
  let all_visible sid =
    let s = Ir.Prog.site prog sid in
    (* Worst-case assumption: the callee clobbers everything it can see. *)
    Bitvec.fold Int_set.add
      (Ir.Info.visible t.Core.Analyze.info s.Ir.Prog.caller)
      Int_set.empty
  in
  let mod_only sid =
    Bitvec.fold Int_set.add (Core.Analyze.mod_of_site t sid) Int_set.empty
  in
  let naive = count_loads prog main.Ir.Prog.body ~kill:all_visible in
  let precise = count_loads prog main.Ir.Prog.body ~kill:mod_only in
  Ir.Prog.iter_sites prog (fun s ->
      Format.printf "MOD(call %s at site %d) = %a@."
        (Ir.Prog.proc prog s.Ir.Prog.callee).Ir.Prog.pname s.Ir.Prog.sid
        (Ir.Pp.pp_var_set prog)
        (Core.Analyze.mod_of_site t s.Ir.Prog.sid));
  Format.printf
    "@.register loads in main:@.  worst-case call clobbering: %d@.  with \
     interprocedural MOD: %d@."
    naive precise;
  Format.printf
    "@.'tolerance' and 'y' survive both calls in the loop; 'x' and 'residual'@.\
     are killed only by the call that can actually write them.@.";
  Format.printf
    "@.constant formal parameters (interprocedural constant propagation):@.";
  Format.printf "%a@." (Ipcp.pp prog) ipcp
