(** The constant-propagation lattice: the "more complex lattice
    structure" of the paper's abstract, exercised over the same
    binding-graph machinery (the binding multi-graph is "a
    simplification of the graph used in our algorithms for
    interprocedural constant propagation" [CCKT 86], §3.1 — this
    library goes the other way and rebuilds that analysis on top of
    it). *)

type t =
  | Bottom  (** No binding seen (optimistic initial value). *)
  | Const of int  (** Every binding delivers this value. *)
  | Top  (** Bindings disagree or are not analyzable. *)

val meet : t -> t -> t
(** [Bottom] is the identity; equal constants stay; anything else is
    [Top]. *)

val equal : t -> t -> bool

val shift : int -> t -> t
(** [shift c v]: the image of [v] under [fun x -> x + c]. *)

val pp : Format.formatter -> t -> unit
