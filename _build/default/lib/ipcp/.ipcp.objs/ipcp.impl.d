lib/ipcp/ipcp.ml: Array Bitvec Cval Format Graphs Ir List Option
