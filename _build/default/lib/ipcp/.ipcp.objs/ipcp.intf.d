lib/ipcp/ipcp.mli: Bitvec Cval Format Ir
