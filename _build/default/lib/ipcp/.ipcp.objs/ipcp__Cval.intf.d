lib/ipcp/cval.mli: Format
