lib/ipcp/cval.ml: Format
