(** Interprocedural constant propagation over the binding structure —
    the paper's closing claim ("this method can be extended to produce
    fast algorithms for data-flow problems with more complex lattice
    structures") made concrete with the [CCKT 86] analysis the binding
    multi-graph was distilled from.

    For every formal parameter [f] (by value {e and} by reference) the
    analysis computes the meet, over every call site binding [f], of a
    {e jump function} of the actual:

    - integer literals give [Const];
    - a {e stable} caller formal (one the caller cannot modify —
      [v ∉ IMOD+(caller)]) passes its own entry value through,
      optionally with a constant offset ([v], [v + c], [v - c],
      [c + v]);
    - a global the whole program never modifies is its initial value
      ([Const 0] under MiniProc semantics);
    - anything else is [Top].

    The resulting dependency graph over formals is solved exactly the
    way Figure 1 solves [RMOD]: strongly-connected components,
    condensation, one topological pass — here {e forward} (values flow
    caller → callee), with a bounded inner iteration per component
    (the lattice has height 2).  Cost is [O(Nφ + Eφ)] meets, the same
    shape as §3.2.

    A formal that is [Const c] receives the value [c] on {e every}
    execution of its procedure.  It is additionally {e foldable} —
    uses inside the body may be rewritten to [c] — when the procedure
    cannot modify it ([f ∉ IMOD+]).

    The dynamic oracle: {!Interp.outcome}'s per-formal entry-value
    summary must agree ([Const c] statically ⟹ every observed entry
    equals [c]) — checked by the differential test-suite. *)

module Cval = Cval
(** Re-exported so clients can pattern-match lattice values. *)

type result = {
  value : Cval.t array;  (** Per variable id; [Top] for non-formals. *)
  foldable : Bitvec.t;
      (** Formals that are [Const] and never modified by their
          procedure. *)
  meets : int;  (** Lattice meets performed (the §3.2-style cost unit). *)
}

val analyze : Ir.Info.t -> imod_plus:Bitvec.t array -> result
(** [imod_plus] from {!Core.Imod_plus} (it defines both actual
    stability and foldability). *)

val constant : result -> int -> int option
(** [Some c] iff the variable is a formal proven to be [c] on every
    invocation. *)

val pp : Ir.Prog.t -> Format.formatter -> result -> unit
(** Per-procedure report of constant formals. *)
