type t =
  | Bottom
  | Const of int
  | Top

let meet a b =
  match (a, b) with
  | Bottom, x | x, Bottom -> x
  | Const x, Const y when x = y -> Const x
  | (Const _ | Top), _ -> Top

let equal a b =
  match (a, b) with
  | Bottom, Bottom | Top, Top -> true
  | Const x, Const y -> x = y
  | (Bottom | Const _ | Top), _ -> false

let shift c = function
  | Const x -> Const (x + c)
  | (Bottom | Top) as v -> v

let pp ppf = function
  | Bottom -> Format.pp_print_string ppf "_|_"
  | Const c -> Format.pp_print_int ppf c
  | Top -> Format.pp_print_string ppf "T"
