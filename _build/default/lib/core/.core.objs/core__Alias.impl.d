lib/core/alias.ml: Array Bitvec Format Ir List Set
