lib/core/gmod_nested.mli: Bitvec Callgraph Ir
