lib/core/imod_plus.ml: Array Bitvec Ir Rmod
