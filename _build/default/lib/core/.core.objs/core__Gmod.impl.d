lib/core/gmod.ml: Array Bitvec Callgraph Graphs Ir
