lib/core/summary.mli: Alias Bitvec Ir
