lib/core/gmod_nested.ml: Array Bitvec Callgraph Gmod Graphs Ir
