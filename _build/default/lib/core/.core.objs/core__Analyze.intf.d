lib/core/analyze.mli: Alias Bitvec Callgraph Format Ir Rmod Summary
