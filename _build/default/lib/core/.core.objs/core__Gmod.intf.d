lib/core/gmod.mli: Bitvec Callgraph Ir
