lib/core/analyze.ml: Alias Array Bitvec Callgraph Format Frontend Gmod Gmod_nested Imod_plus Ir Rmod Summary
