lib/core/imod_plus.mli: Bitvec Ir Rmod
