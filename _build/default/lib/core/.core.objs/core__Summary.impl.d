lib/core/summary.ml: Alias Array Bitvec Frontend Ir List
