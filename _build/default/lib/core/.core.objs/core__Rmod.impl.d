lib/core/rmod.ml: Array Bitvec Callgraph Format Graphs Ir List
