lib/core/rmod.mli: Bitvec Callgraph Format
