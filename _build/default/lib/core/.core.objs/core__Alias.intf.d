lib/core/alias.mli: Bitvec Format Ir
