(** The brute-force reachability reading of [GMOD] (§4: "we might view
    the problem as a generalization of the reachability problem").

    For a {e flat} program — every procedure at nesting level 1, as in
    C or Fortran — the following closed form holds:

    {v GMOD(p) = IMOD+(p) ∪ ⋃_{q reachable from p} (IMOD+(q) ∩ GLOBAL) v}

    because the only variables a callee's summary can carry over a
    return are globals.  This module computes it with one DFS per
    procedure, [O(N·(N+E))] — an independent oracle and the slow
    comparator of experiment F2.

    It is {e deliberately wrong} for programs with nested procedure
    declarations (a chain through a variable's owner must not export
    that variable); callers guard with {!applicable}. *)

val applicable : Ir.Prog.t -> bool
(** [true] iff no procedure sits below nesting level 1. *)

val gmod :
  Ir.Info.t -> Callgraph.Call.t -> imod_plus:Bitvec.t array -> Bitvec.t array
(** Raises [Invalid_argument] when not {!applicable}. *)
