(** Chaotic-iteration reference solvers.

    These compute the same least fixpoints as the paper's linear-time
    algorithms by straightforward round-robin iteration of the defining
    equation systems until nothing changes.  They serve two roles:

    - {e test oracles} — their correctness is immediate from the
      equations, so agreement with {!Core.Rmod} / {!Core.Gmod} /
      {!Core.Gmod_nested} on arbitrary programs is the repository's
      central functional invariant;
    - {e baselines} — they realise the classic Kam–Ullman iterative
      approach whose cost the paper's algorithms undercut.  Equation
      (4) is rapid, so the pass counts are small, but every pass costs
      a full sweep of bit-vector operations. *)

val rmod : Callgraph.Binding.t -> imod:Bitvec.t array -> bool array
(** Least solution of equation (6) on β, by iterating over the edges
    until fixpoint.  Indexed by β node. *)

val rmod_passes : Callgraph.Binding.t -> imod:Bitvec.t array -> bool array * int
(** Same, also returning the number of full edge sweeps executed
    (including the final no-change sweep). *)

val gmod :
  Ir.Info.t -> Callgraph.Call.t -> imod_plus:Bitvec.t array -> Bitvec.t array
(** Least solution of equation (4) on the call multi-graph. *)

val gmod_passes :
  Ir.Info.t ->
  Callgraph.Call.t ->
  imod_plus:Bitvec.t array ->
  Bitvec.t array * int
