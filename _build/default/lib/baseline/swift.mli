(** A swift-style comparator for the reference-parameter problem.

    The original swift algorithm [CoKe 84, CoKe 87a] solves the
    reference-formal subproblem with bit vectors of length [Nβ] (one
    bit per formal parameter in the program) propagated over the call
    multi-graph by a path-expression elimination.  Reimplementing
    Tarjan's elimination verbatim is out of scope (see DESIGN.md,
    Substitutions); this module preserves the property the paper's
    comparison hinges on — {e every propagation step is a bit-vector
    operation whose length grows with the program} — using a worklist
    over call-graph edges.

    On reducible graphs the worklist converges in a few sweeps, like
    the elimination it replaces, so the measured gap between this and
    {!Core.Rmod}'s single-word steps is a conservative estimate of the
    paper's claimed "order of magnitude".

    Counted costs are observable through {!Bitvec.Stats}. *)

val rmod : Callgraph.Binding.t -> imod:Bitvec.t array -> Bitvec.t array
(** Per-procedure bit vector over the variable universe whose set bits
    are the modified by-reference formals of that procedure —
    i.e. [RMOD(p)] in the swift algorithm's own representation. *)

val rmod_as_nodes : Callgraph.Binding.t -> imod:Bitvec.t array -> bool array
(** The same answer converted to β-node indexing, for comparison
    against {!Core.Rmod} and {!Iterative.rmod}. *)
