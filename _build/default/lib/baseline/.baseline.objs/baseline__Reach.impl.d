lib/baseline/reach.ml: Array Bitvec Callgraph Graphs Ir
