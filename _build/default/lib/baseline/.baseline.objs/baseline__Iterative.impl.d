lib/baseline/iterative.ml: Array Bitvec Callgraph Graphs Ir
