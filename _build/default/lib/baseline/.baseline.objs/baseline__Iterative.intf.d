lib/baseline/iterative.mli: Bitvec Callgraph Ir
