lib/baseline/swift.mli: Bitvec Callgraph
