lib/baseline/reach.mli: Bitvec Callgraph Ir
