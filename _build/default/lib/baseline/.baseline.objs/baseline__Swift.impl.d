lib/baseline/swift.ml: Array Bitvec Callgraph Ir
