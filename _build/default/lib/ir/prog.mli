(** Resolved MiniProc programs.

    A program is a set of dense tables: variables by id, procedures by
    id, call sites by id.  The main program block is itself a procedure
    (with no formals); every other procedure has a lexical parent, so
    the procedure table doubles as the nesting tree of §3.3/§4.
    Program-level variables have kind {!Global} — they are
    {e not} counted as locals of the main procedure, matching the
    paper's footnote 3 (main's [GMOD] may legitimately be non-empty).

    Invariants (checked by {!Validate.run}): ids are dense and
    self-consistent; argument vectors match the callee's formal list in
    arity and mode; by-reference actuals are lvalues whose base
    variable is visible at the call site; only array-typed variables
    are indexed, with the right rank. *)

type param_mode =
  | By_ref  (** [var] parameter: callee modifications reach the actual. *)
  | By_value  (** Copied in; callee modifications stay local. *)

type var_kind =
  | Global  (** Declared in the program block. *)
  | Local of int  (** Declared in procedure [pid] (possibly main). *)
  | Formal of { proc : int; index : int; mode : param_mode }
      (** Formal parameter [index] (0-based) of procedure [proc]. *)

type var = {
  vid : int;
  vname : string;
  vty : Types.t;
  kind : var_kind;
}

(** Actual argument at a call site. *)
type arg =
  | Arg_ref of Expr.lvalue
      (** Bound to a [By_ref] formal; must denote a location. *)
  | Arg_value of Expr.t  (** Bound to a [By_value] formal. *)

type site = {
  sid : int;
  caller : int;
      (** The innermost procedure whose body contains the call.  With
          nesting this may differ from the procedure whose formals the
          arguments mention (§3.3, problem 2). *)
  callee : int;
  args : arg array;
}

type proc = {
  pid : int;
  pname : string;
  parent : int option;  (** Lexically enclosing procedure; [None] only for main. *)
  level : int;  (** Nesting depth: main = 0, its procedures = 1, ... *)
  formals : int array;  (** Variable ids, positional. *)
  locals : int list;  (** Non-formal locals (globals excluded for main). *)
  nested : int list;  (** Procedures declared directly inside, in order. *)
  body : Stmt.t list;
}

type t = {
  name : string;
  vars : var array;
  procs : proc array;
  sites : site array;
  main : int;  (** Pid of the main program block. *)
}

val n_vars : t -> int
val n_procs : t -> int
val n_sites : t -> int

val var : t -> int -> var
val proc : t -> int -> proc
val site : t -> int -> site

val var_owner : var -> int option
(** Declaring procedure; [None] for globals. *)

val is_global : var -> bool
val is_ref_formal : var -> bool

val formal_mode : t -> proc -> int -> param_mode
(** Mode of the [i]-th formal of a procedure. *)

val owner_level : t -> var -> int
(** Nesting level of the variable's declaration: 0 for globals, the
    owner's level otherwise (formals of a level-[l] procedure are
    level [l]). *)

val ancestors : t -> int -> int list
(** [ancestors p pid] lists [pid], its parent, ..., up to main. *)

val is_ancestor : t -> anc:int -> desc:int -> bool
(** Lexical (nesting-tree) ancestry, reflexive. *)

val visible : t -> proc:int -> var:int -> bool
(** Static scoping: a variable is visible in [proc] iff it is global or
    declared by [proc] or one of its lexical ancestors.  (Shadowing is
    resolved by the front end before ids are assigned, so id-level
    visibility needs no shadowing logic.) *)

val iter_procs : t -> (proc -> unit) -> unit
val iter_sites : t -> (site -> unit) -> unit
val iter_vars : t -> (var -> unit) -> unit

val sites_of : t -> int -> site list
(** Call sites whose [caller] is the given procedure, by site id. *)

val max_level : t -> int
(** The paper's [dP]: deepest procedure nesting level in the program. *)

val find_proc : t -> string -> proc option
(** Look a procedure up by name (names are globally unique in
    MiniProc). *)

val find_var : t -> proc:int -> string -> var option
(** Resolve a name as the given procedure would see it: innermost
    declaration along the nesting chain, then globals. *)
