(** Resolved MiniProc statements.

    Call statements carry only a call-site id; the callee and the
    actual-argument vector live in the program's site table
    ({!Prog.site}), because every interprocedural structure — the call
    multi-graph, the binding multi-graph, the [DMOD] computation — is
    naturally indexed by site id. *)

type t =
  | Assign of Expr.lvalue * Expr.t
  | If of Expr.t * t list * t list  (** condition, then-branch, else-branch. *)
  | While of Expr.t * t list
  | For of int * Expr.t * Expr.t * t list
      (** [For (i, lo, hi, body)] — [i] is the loop variable's id; the
          loop both modifies and uses [i]. *)
  | Call of int  (** Call-site id into {!Prog.t}'s site table. *)
  | Read of Expr.lvalue  (** Input statement: modifies the lvalue. *)
  | Write of Expr.t  (** Output statement: uses the expression. *)

val iter : (t -> unit) -> t list -> unit
(** Pre-order visit of every statement, including nested ones. *)

val fold : ('a -> t -> 'a) -> 'a -> t list -> 'a
(** Pre-order fold over every statement, including nested ones. *)

val count : t list -> int
(** Total number of statements, nested included. *)

val call_sites : t list -> int list
(** Site ids of every call statement, in pre-order. *)
