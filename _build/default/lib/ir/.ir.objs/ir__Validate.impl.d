lib/ir/validate.ml: Array Expr Format List Printf Prog Stmt Types
