lib/ir/info.mli: Bitvec Prog
