lib/ir/stmt.ml: Expr List
