lib/ir/pp.mli: Bitvec Expr Format Prog Stmt
