lib/ir/prog.mli: Expr Stmt Types
