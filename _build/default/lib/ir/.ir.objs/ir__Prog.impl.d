lib/ir/prog.ml: Array Expr List Stmt String Types
