lib/ir/pp.ml: Array Bitvec Expr Format List Printf Prog Stmt Types
