lib/ir/expr.ml: Format Int List Set
