lib/ir/info.ml: Array Bitvec List Prog
