(** MiniProc value types.

    MiniProc is the small Pascal/Fortran-flavoured language this
    reproduction analyzes: integer and boolean scalars plus
    multi-dimensional integer arrays (the payload of §6's regular
    section analysis). *)

type t =
  | Int
  | Bool
  | Array of int list
      (** [Array dims] — one extent per dimension, each positive.
          Element type is always [Int]. *)

val equal : t -> t -> bool

val rank : t -> int
(** Number of array dimensions; 0 for scalars. *)

val is_array : t -> bool

val pp : Format.formatter -> t -> unit
(** Concrete MiniProc syntax: [int], [bool],
    [array[d1, d2] of int]. *)

val to_string : t -> string
