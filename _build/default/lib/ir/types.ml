type t =
  | Int
  | Bool
  | Array of int list

let equal a b =
  match (a, b) with
  | Int, Int | Bool, Bool -> true
  | Array d1, Array d2 -> List.length d1 = List.length d2 && List.for_all2 ( = ) d1 d2
  | (Int | Bool | Array _), _ -> false

let rank = function
  | Int | Bool -> 0
  | Array dims -> List.length dims

let is_array = function
  | Array _ -> true
  | Int | Bool -> false

let pp ppf = function
  | Int -> Format.pp_print_string ppf "int"
  | Bool -> Format.pp_print_string ppf "bool"
  | Array dims ->
    Format.fprintf ppf "array[%a] of int"
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
         Format.pp_print_int)
      dims

let to_string t = Format.asprintf "%a" pp t
