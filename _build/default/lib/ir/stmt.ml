type t =
  | Assign of Expr.lvalue * Expr.t
  | If of Expr.t * t list * t list
  | While of Expr.t * t list
  | For of int * Expr.t * Expr.t * t list
  | Call of int
  | Read of Expr.lvalue
  | Write of Expr.t

let rec iter f stmts =
  List.iter
    (fun s ->
      f s;
      match s with
      | If (_, then_, else_) ->
        iter f then_;
        iter f else_
      | While (_, body) | For (_, _, _, body) -> iter f body
      | Assign _ | Call _ | Read _ | Write _ -> ())
    stmts

let fold f init stmts =
  let acc = ref init in
  iter (fun s -> acc := f !acc s) stmts;
  !acc

let count stmts = fold (fun n _ -> n + 1) 0 stmts

let call_sites stmts =
  List.rev
    (fold
       (fun acc s ->
         match s with
         | Call sid -> sid :: acc
         | Assign _ | If _ | While _ | For _ | Read _ | Write _ -> acc)
       [] stmts)
