type param_mode = By_ref | By_value

type var_kind =
  | Global
  | Local of int
  | Formal of { proc : int; index : int; mode : param_mode }

type var = {
  vid : int;
  vname : string;
  vty : Types.t;
  kind : var_kind;
}

type arg =
  | Arg_ref of Expr.lvalue
  | Arg_value of Expr.t

type site = {
  sid : int;
  caller : int;
  callee : int;
  args : arg array;
}

type proc = {
  pid : int;
  pname : string;
  parent : int option;
  level : int;
  formals : int array;
  locals : int list;
  nested : int list;
  body : Stmt.t list;
}

type t = {
  name : string;
  vars : var array;
  procs : proc array;
  sites : site array;
  main : int;
}

let n_vars p = Array.length p.vars
let n_procs p = Array.length p.procs
let n_sites p = Array.length p.sites

let var p vid = p.vars.(vid)
let proc p pid = p.procs.(pid)
let site p sid = p.sites.(sid)

let var_owner v =
  match v.kind with
  | Global -> None
  | Local pid -> Some pid
  | Formal { proc; _ } -> Some proc

let is_global v =
  match v.kind with
  | Global -> true
  | Local _ | Formal _ -> false

let is_ref_formal v =
  match v.kind with
  | Formal { mode = By_ref; _ } -> true
  | Formal { mode = By_value; _ } | Global | Local _ -> false

let formal_mode p pr i =
  match (var p pr.formals.(i)).kind with
  | Formal { mode; _ } -> mode
  | Global | Local _ -> invalid_arg "Prog.formal_mode: formal table corrupt"

let owner_level p v =
  match var_owner v with
  | None -> 0
  | Some pid -> (proc p pid).level

let ancestors p pid =
  let rec up pid acc =
    match (proc p pid).parent with
    | None -> List.rev (pid :: acc)
    | Some parent -> up parent (pid :: acc)
  in
  up pid []

let is_ancestor p ~anc ~desc =
  let rec up pid =
    pid = anc
    ||
    match (proc p pid).parent with
    | None -> false
    | Some parent -> up parent
  in
  up desc

let visible p ~proc:pid ~var:vid =
  match (var p vid).kind with
  | Global -> true
  | Local owner | Formal { proc = owner; _ } -> is_ancestor p ~anc:owner ~desc:pid

let iter_procs p f = Array.iter f p.procs
let iter_sites p f = Array.iter f p.sites
let iter_vars p f = Array.iter f p.vars

let sites_of p pid =
  Array.fold_right (fun s acc -> if s.caller = pid then s :: acc else acc) p.sites []

let max_level p = Array.fold_left (fun acc pr -> max acc pr.level) 0 p.procs

let find_proc p name =
  Array.fold_left
    (fun acc pr ->
      match acc with
      | Some _ -> acc
      | None -> if String.equal pr.pname name then Some pr else None)
    None p.procs

let find_var p ~proc:pid name =
  let declared_in pr =
    let here vid = String.equal (var p vid).vname name in
    match List.find_opt here (Array.to_list pr.formals @ pr.locals) with
    | Some vid -> Some (var p vid)
    | None -> None
  in
  let rec walk pid =
    let pr = proc p pid in
    match declared_in pr with
    | Some v -> Some v
    | None -> (
      match pr.parent with
      | Some parent -> walk parent
      | None ->
        (* Program scope: globals. *)
        Array.fold_left
          (fun acc v ->
            match acc with
            | Some _ -> acc
            | None -> if is_global v && String.equal v.vname name then Some v else None)
          None p.vars)
  in
  walk pid
