(** The sectioned reference-formal problem — §6's data-flow framework

    {v rsd(fp1) = lrsd(fp1) ⊔ ⨆_(fp1,fp2)∈Eβ g_e(rsd(fp2)) v}

    over the binding multi-graph, with the binding functions of
    {!Bindfn}.  Because every [g_e] either is the identity or restricts
    (MiniProc actuals are whole variables or single elements), the
    §6 cycle condition holds and the framework is rapid; we solve it
    with a worklist iteration whose total join count is bounded by
    [height · Eβ] with [height = max rank + 2] — and, per §6's
    observation, the measured iteration count does not grow with the
    lattice height (the cycle condition collapses cyclic propagation).

    [rsd] values are expressed in each formal's own procedure's frame.
    The bit-level {!Core.Rmod} answer is recovered exactly by
    flattening ([Section.t ≠ Bottom]) — a test-suite invariant. *)

type result = {
  binding : Callgraph.Binding.t;
  rsd : Section.t array;  (** Per β node, the formal's modified section. *)
  joins : int;  (** Join operations performed (the §6 cost unit). *)
}

val solve : Ir.Info.t -> Callgraph.Binding.t -> result
(** Seeds each formal with its owner's {!Lrsd.lrsd_mod} entry. *)

val solve_use : Ir.Info.t -> Callgraph.Binding.t -> result
(** Seeded with {!Lrsd.lrsd_use} instead. *)

val section_of : result -> int -> Section.t
(** By variable id; [Bottom] for non-β variables. *)
