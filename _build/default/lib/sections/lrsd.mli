(** Local regular-section descriptors — the paper's [lrsd(x)],
    "computable by local examination of a procedure".

    For every procedure, the variables it directly modifies (or uses)
    are summarised as sections instead of bits: an array-element
    assignment [A[i, j] := …] contributes the section [A(i', j')] where
    a subscript survives as a symbolic atom only when it is an affine
    form [v + c] over a variable [v] that the procedure {e never
    modifies} (so the atom is stable across the whole activation —
    flow-insensitivity demands this); any other subscript — a loop
    variable, a locally assigned temporary, a compound expression —
    widens that dimension to [Star].  This is precisely how row and
    column sections arise: in [for j := … do A[i, j] := …], [j] is
    modified by the loop, so the access summarises to the row
    [A(i, star)] (star written out to keep this a legal comment).

    Whole-array effects (passing the array by reference, {!Stmt.Read}
    of an element with unstable subscripts, …) widen to the whole
    array. *)

val atomize : unstable:Bitvec.t -> Ir.Expr.t -> Section.dim
(** [Exact] for constants and affine forms [v], [v + c], [v - c],
    [c + v] over stable [v]; [Star] otherwise. *)

val unstable_vars : Ir.Info.t -> int -> Bitvec.t
(** The variables procedure [pid] may modify locally
    ([IMOD] without the nesting extension) — the set that disqualifies
    subscript atoms. *)

val lrsd_mod : Ir.Info.t -> int -> Secmap.t
(** Sectioned local modification summary of one procedure (the
    sectioned [IMOD], nesting aside — section analysis is defined on
    flat programs, see {!Analyze_sections}). *)

val lrsd_use : Ir.Info.t -> int -> Secmap.t
(** Sectioned local use summary. *)

val stmts_mod : Ir.Prog.t -> unstable:Bitvec.t -> Ir.Stmt.t list -> Secmap.t
(** Sectioned local modifications of a statement list under a
    caller-chosen instability set — used for per-iteration loop
    summaries where the loop variable is deliberately treated as
    stable. *)

val stmts_use : Ir.Prog.t -> unstable:Bitvec.t -> Ir.Stmt.t list -> Secmap.t

val use_expr_into :
  unstable:Bitvec.t -> add:(int -> Section.t -> unit) -> Ir.Expr.t -> unit
(** Feed the sectioned uses of one expression (scalar reads as rank-0
    sections, element reads as element sections, subscript reads
    recursively) into [add]. *)

val use_lvalue_indices_into :
  unstable:Bitvec.t -> add:(int -> Section.t -> unit) -> Ir.Expr.lvalue -> unit
(** Sectioned uses of an lvalue's subscripts only. *)
