type t = Section.t array

let create prog = Array.make (Ir.Prog.n_vars prog) Section.bottom
let copy = Array.copy
let get t vid = t.(vid)
let set t vid s = t.(vid) <- s

let add t vid s =
  let joined = Section.join t.(vid) s in
  if Section.equal joined t.(vid) then false
  else begin
    t.(vid) <- joined;
    true
  end

let join_into ~src ~dst =
  let changed = ref false in
  Array.iteri (fun vid s -> if add dst vid s then changed := true) src;
  !changed

let join_masked_into ~src ~dst ~mask =
  let changed = ref false in
  Array.iteri
    (fun vid s ->
      if Bitvec.get mask vid && add dst vid s then changed := true)
    src;
  !changed

let equal a b = Array.for_all2 Section.equal a b

let to_bits t =
  let bits = Bitvec.create (Array.length t) in
  Array.iteri
    (fun vid s -> if not (Section.equal s Section.bottom) then Bitvec.set bits vid)
    t;
  bits

let touched t =
  let acc = ref [] in
  for vid = Array.length t - 1 downto 0 do
    if not (Section.equal t.(vid) Section.bottom) then acc := (vid, t.(vid)) :: !acc
  done;
  !acc

let pp prog ppf t =
  let var_name v = (Ir.Prog.var prog v).Ir.Prog.vname in
  Format.fprintf ppf "{@[%a@]}"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf ",@ ")
       (fun ppf (vid, s) ->
         Format.fprintf ppf "%s%a" (var_name vid) (Section.pp ~var_name) s))
    (touched t)
