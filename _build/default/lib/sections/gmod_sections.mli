(** [findgmod] over vectors of lattice elements — §6's claim that "the
    bit vector technique for solving the global variable problem can be
    directly extended to vectors of lattice elements".

    Same one-pass Tarjan structure as {!Core.Gmod}, with bitwise or
    replaced by pointwise {!Section.join} and the [∖ LOCAL] masking
    unchanged.  Sections crossing procedure boundaries are first
    widened by {!Bindfn.retarget_global} so their symbolic atoms remain
    meaningful in any frame (constants and immutable globals survive;
    frame-specific atoms become [Star]) — keeping the propagation
    frame-independent, which is what makes the strongly-connected
    component sharing step of Figure 2 sound in the sectioned setting.

    Defined for flat (two-level) programs, like the rest of the
    section analysis; {!Analyze_sections.applicable} guards. *)

val solve :
  Ir.Info.t -> Callgraph.Call.t -> seed:Secmap.t array -> Secmap.t array
(** One-pass Tarjan form. *)

val solve_iterative :
  Ir.Info.t -> Callgraph.Call.t -> seed:Secmap.t array -> Secmap.t array
(** Chaotic-iteration reference (test oracle). *)
