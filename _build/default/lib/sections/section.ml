type atom =
  | Const of int
  | Affine of {
      var : int;
      offset : int;
    }

type dim =
  | Exact of atom
  | Star

type t =
  | Bottom
  | Section of dim array

let bottom = Bottom
let whole ~rank = Section (Array.make rank Star)
let element atoms = Section (Array.of_list (List.map (fun a -> Exact a) atoms))

let equal_atom a b =
  match (a, b) with
  | Const x, Const y -> x = y
  | Affine { var = v1; offset = o1 }, Affine { var = v2; offset = o2 } ->
    v1 = v2 && o1 = o2
  | (Const _ | Affine _), _ -> false

let equal_dim a b =
  match (a, b) with
  | Star, Star -> true
  | Exact x, Exact y -> equal_atom x y
  | (Star | Exact _), _ -> false

let equal a b =
  match (a, b) with
  | Bottom, Bottom -> true
  | Section d1, Section d2 ->
    Array.length d1 = Array.length d2 && Array.for_all2 equal_dim d1 d2
  | (Bottom | Section _), _ -> false

let join a b =
  match (a, b) with
  | Bottom, x | x, Bottom -> x
  | Section d1, Section d2 ->
    if Array.length d1 <> Array.length d2 then
      invalid_arg "Section.join: rank mismatch";
    Section
      (Array.map2 (fun x y -> if equal_dim x y then x else Star) d1 d2)

let leq a b = equal (join a b) b

let rank = function
  | Bottom -> None
  | Section d -> Some (Array.length d)

(* Provably-disjoint test per dimension: two exact atoms that denote
   different values.  Distinct variables may coincide at run time, so
   only constants and same-variable offsets separate. *)
let surely_different a b =
  match (a, b) with
  | Const x, Const y -> x <> y
  | Affine { var = v1; offset = o1 }, Affine { var = v2; offset = o2 } ->
    v1 = v2 && o1 <> o2
  | Const _, Affine _ | Affine _, Const _ -> false

let intersects a b =
  match (a, b) with
  | Bottom, _ | _, Bottom -> false
  | Section d1, Section d2 ->
    Array.length d1 = Array.length d2
    && not
         (Array.exists2
            (fun x y ->
              match (x, y) with
              | Exact p, Exact q -> surely_different p q
              | (Star | Exact _), _ -> false)
            d1 d2)

let height ~rank = rank + 2

let pp_atom var_name ppf = function
  | Const c -> Format.pp_print_int ppf c
  | Affine { var; offset = 0 } -> Format.pp_print_string ppf (var_name var)
  | Affine { var; offset } when offset > 0 ->
    Format.fprintf ppf "%s+%d" (var_name var) offset
  | Affine { var; offset } -> Format.fprintf ppf "%s%d" (var_name var) offset

let pp ?(var_name = fun v -> Printf.sprintf "v%d" v) ppf = function
  | Bottom -> Format.pp_print_string ppf "_"
  | Section [||] -> Format.pp_print_string ppf "*"
  | Section dims ->
    Format.fprintf ppf "(%a)"
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
         (fun ppf -> function
           | Star -> Format.pp_print_string ppf "*"
           | Exact a -> pp_atom var_name ppf a))
      (Array.to_list dims)
