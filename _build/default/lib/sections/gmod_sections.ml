module Digraph = Graphs.Digraph
module Prog = Ir.Prog

(* GMOD[dst] ⊔= retarget(GMOD[src]) ∖ LOCAL[src]; returns whether dst
   changed. *)
let add_escaped info gmod ~src ~dst =
  let mask = Ir.Info.non_local info src in
  let changed = ref false in
  List.iter
    (fun (vid, s) ->
      if Bitvec.get mask vid then begin
        let widened = Bindfn.retarget_global info s in
        if Secmap.add gmod.(dst) vid widened then changed := true
      end)
    (Secmap.touched gmod.(src));
  !changed

let solve_iterative info (call : Callgraph.Call.t) ~seed =
  let g = call.Callgraph.Call.graph in
  let gmod = Array.map Secmap.copy seed in
  let changed = ref true in
  while !changed do
    changed := false;
    Digraph.iter_edges g (fun _ p q ->
        if add_escaped info gmod ~src:q ~dst:p then changed := true)
  done;
  gmod

let solve info (call : Callgraph.Call.t) ~seed =
  let g = call.Callgraph.Call.graph in
  let n = Digraph.n_nodes g in
  let prog = call.Callgraph.Call.prog in
  let gmod = Array.map Secmap.copy seed in
  let dfn = Array.make n 0 in
  let lowlink = Array.make n 0 in
  let on_stack = Array.make n false in
  let tarjan_stack = ref [] in
  let next_dfn = ref 1 in
  let close_component root =
    let rec pop () =
      match !tarjan_stack with
      | [] -> assert false
      | u :: rest ->
        tarjan_stack := rest;
        on_stack.(u) <- false;
        if u <> root then ignore (add_escaped info gmod ~src:root ~dst:u);
        if u <> root then pop ()
    in
    pop ()
  in
  let succs = Array.make n [||] in
  for v = 0 to n - 1 do
    let deg = Digraph.out_degree g v in
    let a = Array.make deg 0 in
    let i = ref 0 in
    Digraph.iter_succ g v (fun w ->
        a.(!i) <- w;
        incr i);
    succs.(v) <- a
  done;
  let frame_node = Array.make (n + 1) 0 in
  let frame_next = Array.make (n + 1) 0 in
  let search root =
    if dfn.(root) = 0 then begin
      let sp = ref 0 in
      let push v =
        dfn.(v) <- !next_dfn;
        lowlink.(v) <- !next_dfn;
        incr next_dfn;
        tarjan_stack := v :: !tarjan_stack;
        on_stack.(v) <- true;
        frame_node.(!sp) <- v;
        frame_next.(!sp) <- 0;
        incr sp
      in
      push root;
      while !sp > 0 do
        let v = frame_node.(!sp - 1) in
        let i = frame_next.(!sp - 1) in
        if i < Array.length succs.(v) then begin
          frame_next.(!sp - 1) <- i + 1;
          let q = succs.(v).(i) in
          if dfn.(q) = 0 then push q
          else if on_stack.(q) && dfn.(q) < dfn.(v) then
            lowlink.(v) <- min dfn.(q) lowlink.(v)
          else ignore (add_escaped info gmod ~src:q ~dst:v)
        end
        else begin
          decr sp;
          if lowlink.(v) = dfn.(v) then close_component v;
          if !sp > 0 then begin
            let parent = frame_node.(!sp - 1) in
            lowlink.(parent) <- min lowlink.(parent) lowlink.(v);
            ignore (add_escaped info gmod ~src:v ~dst:parent)
          end
        end
      done
    end
  in
  search prog.Prog.main;
  for v = 0 to n - 1 do
    search v
  done;
  gmod
