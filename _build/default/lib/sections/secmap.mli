(** Vectors of lattice elements — §6's replacement for bit vectors.

    A [Secmap.t] assigns every variable of the program a
    {!Section.t}: [Bottom] for untouched variables, a rank-0 section
    for touched scalars, a proper section for arrays.  It plays the
    role the bit vector played in §3/§4, with bitwise or generalised to
    pointwise {!Section.join}. *)

type t

val create : Ir.Prog.t -> t
(** Everything [Bottom]. *)

val copy : t -> t
val get : t -> int -> Section.t

val set : t -> int -> Section.t -> unit
(** Direct store (no join). *)

val add : t -> int -> Section.t -> bool
(** Join a section into one slot; [true] iff the slot changed. *)

val join_into : src:t -> dst:t -> bool
(** Pointwise join; [true] iff [dst] changed. *)

val join_masked_into : src:t -> dst:t -> mask:Bitvec.t -> bool
(** Pointwise join restricted to the variables set in [mask] — the
    sectioned form of [∪ (· ∖ LOCAL)] steps. *)

val equal : t -> t -> bool

val to_bits : t -> Bitvec.t
(** Flatten: variable set whose section is not [Bottom] — the §3 view
    of a §6 answer, used by the soundness comparison tests. *)

val touched : t -> (int * Section.t) list
(** Non-[Bottom] entries, by variable id. *)

val pp : Ir.Prog.t -> Format.formatter -> t -> unit
