lib/sections/deps.ml: Array Ir List Printf Secmap Section
