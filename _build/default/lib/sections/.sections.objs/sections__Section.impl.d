lib/sections/section.ml: Array Format List Printf
