lib/sections/secmap.ml: Array Bitvec Format Ir Section
