lib/sections/gmod_sections.ml: Array Bindfn Bitvec Callgraph Graphs Ir List Secmap
