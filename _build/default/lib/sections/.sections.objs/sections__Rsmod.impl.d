lib/sections/rsmod.ml: Array Bindfn Callgraph Graphs Ir Lrsd Secmap Section
