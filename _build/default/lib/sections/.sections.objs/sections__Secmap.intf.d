lib/sections/secmap.mli: Bitvec Format Ir Section
