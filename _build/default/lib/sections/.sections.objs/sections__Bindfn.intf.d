lib/sections/bindfn.mli: Bitvec Ir Section
