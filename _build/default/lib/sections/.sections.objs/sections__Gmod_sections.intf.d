lib/sections/gmod_sections.mli: Callgraph Ir Secmap
