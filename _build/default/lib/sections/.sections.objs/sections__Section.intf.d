lib/sections/section.mli: Format
