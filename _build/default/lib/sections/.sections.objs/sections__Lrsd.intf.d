lib/sections/lrsd.mli: Bitvec Ir Secmap Section
