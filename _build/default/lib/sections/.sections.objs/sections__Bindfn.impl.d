lib/sections/bindfn.ml: Array Bitvec Frontend Ir List Lrsd Section
