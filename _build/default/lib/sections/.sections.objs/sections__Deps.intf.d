lib/sections/deps.mli: Ir Secmap Section
