lib/sections/analyze_sections.mli: Callgraph Format Ir Rsmod Secmap
