lib/sections/lrsd.ml: Array Bitvec Frontend Ir List Secmap Section
