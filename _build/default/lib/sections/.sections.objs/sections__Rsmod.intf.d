lib/sections/rsmod.mli: Callgraph Ir Section
