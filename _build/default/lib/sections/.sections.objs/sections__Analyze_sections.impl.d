lib/sections/analyze_sections.ml: Array Bindfn Bitvec Callgraph Format Gmod_sections Ir List Lrsd Rsmod Secmap Section
