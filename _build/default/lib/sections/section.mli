(** The regular-section lattice of §6 (Figure 3), generalised from the
    paper's 2-D example to any rank.

    A section describes the part of an array an effect may touch: each
    dimension is either pinned to a symbolic subscript ([Exact]) or
    unconstrained ([Star]).  Figure 3's lattice for a 2-D array [A] is
    exactly: [A(I, J)] (both exact) above [A(star, J)] and [A(K, star)] above
    [A(star, star)].  [Bottom] is "not accessed at all" and scalars are
    rank-0 sections (accessed / not accessed — the single bit of §3).

    Symbolic subscripts are affine atoms [v + c] over variables that
    the describing procedure does not modify (the front end of the
    analysis, {!Lrsd}, guarantees this), so equal atoms denote equal
    values throughout any single activation and the lattice operations
    are sound.

    [join] is the may-effect union (descends Figure 3: joining two
    different exact rows gives the whole array); the paper writes it as
    the lattice meet.  The third §6 property — around any cycle of the
    binding multi-graph [g_p(x) ⊓ x = x] — holds by construction here
    because MiniProc actual parameters are whole variables or single
    elements, making every binding function either the identity or a
    restriction. *)

type atom =
  | Const of int
  | Affine of {
      var : int;  (** Variable id of a symbolically stable scalar. *)
      offset : int;
    }

type dim =
  | Exact of atom
  | Star

type t =
  | Bottom  (** No access. *)
  | Section of dim array  (** One entry per dimension; [[||]] for scalars. *)

val bottom : t

val whole : rank:int -> t
(** All-[Star]: the entire array (or the scalar, at rank 0). *)

val element : atom list -> t
(** Single element pinned in every dimension. *)

val equal : t -> t -> bool
val equal_atom : atom -> atom -> bool

val join : t -> t -> t
(** May-union: [Bottom] is the identity; sections of equal rank combine
    dimension-wise ([Exact a ⊔ Exact a = Exact a], anything else
    [Star]).  Raises [Invalid_argument] on rank mismatch. *)

val leq : t -> t -> bool
(** [leq a b] iff [a]'s accesses are contained in [b]'s:
    [join a b = b]. *)

val rank : t -> int option
(** [None] for [Bottom]. *)

val intersects : t -> t -> bool
(** May the two sections overlap?  Used for dependence testing: two
    sections are surely disjoint only when some dimension pins both to
    {e provably different} subscripts (distinct constants, or the same
    variable with different offsets). *)

val height : rank:int -> int
(** Length of the longest strictly increasing chain from [Bottom] to
    [whole] — [rank + 2]; the §6 complexity discussion notes the
    running time does {e not} depend on it. *)

val pp : ?var_name:(int -> string) -> Format.formatter -> t -> unit
(** Prints like the paper: [A(I, *, 3)] style (without the array
    name). *)
