(** The per-edge binding functions [g_e] of §6.

    An edge of the binding multi-graph carries the call site and
    argument position it arose from; [g_e] maps a regular section
    describing an effect on the {e callee's formal} (expressed in the
    callee's terms) to a section describing the induced effect on the
    {e actual} (expressed in the caller's terms).  Two shapes occur in
    MiniProc:

    - {e whole-variable binding} [call q(A)]: ranks agree and [g_e]
      substitutes the callee's symbolic atoms into the caller's frame —
      a by-value formal atom becomes the actual expression's atom when
      that is affine and stable in the caller, a globally-immutable
      global survives unchanged, anything else widens to [Star];
    - {e element binding} [call q(A[i, j])]: the callee's formal is a
      scalar; its rank-0 section maps to the single-element section
      [A(i', j')] atomised against the caller's stable variables — a
      {e restriction}, which is why the §6 cycle condition
      [g_p(x) ⊓ x = x] holds.

    Both are monotone and reduce access ([g_e x ⊑] the whole actual
    restricted appropriately), as §6 requires. *)

val project :
  Ir.Info.t ->
  site:Ir.Prog.site ->
  arg_pos:int ->
  callee_section:Section.t ->
  int * Section.t
(** [(base variable of the actual, induced section on it)].  The
    argument at [arg_pos] must be by-reference. *)

val project_unstable :
  Ir.Info.t ->
  site:Ir.Prog.site ->
  arg_pos:int ->
  caller_unstable:Bitvec.t ->
  callee_section:Section.t ->
  int * Section.t
(** {!project} with an explicit caller instability set (per-iteration
    loop summaries clear the loop variable from it). *)

val subst_section :
  Ir.Info.t -> site:Ir.Prog.site -> caller_unstable:Bitvec.t -> Section.t -> Section.t
(** Substitute a callee-frame section into the caller's frame at one
    call site: callee formals translate through the actuals, stable
    globals survive, everything else widens to [Star]. *)

val retarget_global : Ir.Info.t -> Section.t -> Section.t
(** Widen a section so it is meaningful in {e any} procedure: keeps
    constant atoms and atoms over globally-immutable globals, widens
    the rest to [Star].  Used when sections of global arrays flow
    through the call graph, where no single binding applies. *)

val globally_immutable : Ir.Info.t -> Bitvec.t
(** Globals no procedure ever modifies directly — usable as symbolic
    constants program-wide.  (Memoised per {!Ir.Info} instance would be
    nicer; recomputed per call, callers should cache.) *)
