module Binding = Callgraph.Binding
module Digraph = Graphs.Digraph
module Prog = Ir.Prog

type result = {
  binding : Binding.t;
  rsd : Section.t array;
  joins : int;
}

let solve_seeded info (binding : Binding.t) ~seed_of =
  let prog = Ir.Info.prog info in
  let g = binding.Binding.graph in
  let n = Digraph.n_nodes g in
  (* Per-procedure local section maps, computed once. *)
  let lrsd = Array.init (Prog.n_procs prog) (fun pid -> seed_of pid) in
  let rsd =
    Array.init n (fun node ->
        let vid = Binding.var binding node in
        let owner =
          match (Prog.var prog vid).Prog.kind with
          | Prog.Formal { proc; _ } -> proc
          | Prog.Global | Prog.Local _ -> assert false
        in
        Secmap.get lrsd.(owner) vid)
  in
  let joins = ref 0 in
  (* Worklist iteration over β edges: propagate callee sections to the
     caller's formal through g_e. *)
  let changed = ref true in
  while !changed do
    changed := false;
    Digraph.iter_edges g (fun e m n_node ->
        let { Binding.site; arg_pos; via_element = _ } = binding.Binding.edges.(e) in
        let site = Prog.site prog site in
        let callee_section = rsd.(n_node) in
        if not (Section.equal callee_section Section.bottom) then begin
          let base, induced =
            Bindfn.project info ~site ~arg_pos ~callee_section
          in
          assert (base = Binding.var binding m);
          incr joins;
          let joined = Section.join rsd.(m) induced in
          if not (Section.equal joined rsd.(m)) then begin
            rsd.(m) <- joined;
            changed := true
          end
        end)
  done;
  { binding; rsd; joins = !joins }

let solve info binding = solve_seeded info binding ~seed_of:(Lrsd.lrsd_mod info)

let solve_use info binding = solve_seeded info binding ~seed_of:(Lrsd.lrsd_use info)

let section_of r vid =
  match Binding.node_opt r.binding vid with
  | None -> Section.bottom
  | Some node -> r.rsd.(node)
