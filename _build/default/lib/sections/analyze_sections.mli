(** Driver for the sectioned (§6) analysis chain on flat programs:
    local sections → [rsd] on β → sectioned [IMOD+] → sectioned
    [GMOD]/[GUSE] → per-site sectioned [MOD]/[USE].

    Flattening every section to a bit reproduces the §3 bit-level
    answers exactly (soundness/precision bridge, tested); the gain is
    that effects confined to rows, columns or single elements of arrays
    stay visible, which is what loop parallelisation needs (§6's
    motivation, exercised by the [parallelize] example and the
    {!Deps} test). *)

type t = {
  info : Ir.Info.t;
  call : Callgraph.Call.t;
  binding : Callgraph.Binding.t;
  rsmod : Rsmod.result;
  rsuse : Rsmod.result;
  imod_plus : Secmap.t array;  (** Sectioned [IMOD+], per procedure. *)
  iuse_plus : Secmap.t array;
  gmod : Secmap.t array;  (** Sectioned [GMOD], per procedure. *)
  guse : Secmap.t array;
}

val applicable : Ir.Prog.t -> bool
(** Section analysis is defined on flat (two-level) programs. *)

val run : Ir.Prog.t -> t
(** Raises [Invalid_argument] if not {!applicable}. *)

val mod_of_site : t -> int -> Secmap.t
(** Sectioned [DMOD(s)] — the §5 projection with binding-function
    translation of the callee's formal sections onto the actuals.
    (Alias extension, being whole-variable information, is a bit-level
    concern; apply {!Core.Alias} to the flattened map if needed.) *)

val use_of_site : t -> int -> Secmap.t

val loop_summary :
  t -> proc:int -> ivar:int -> body:Ir.Stmt.t list -> Secmap.t * Secmap.t
(** [(MOD, USE)] of one iteration of a loop over [ivar] contained in
    procedure [proc]: the loop variable is treated as {e stable} (it is
    fixed within an iteration), so sections stay pinned to it and
    {!Deps.analyze_loop} can separate iterations. *)

val pp_report : Format.formatter -> t -> unit
