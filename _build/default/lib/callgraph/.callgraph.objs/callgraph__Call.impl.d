lib/callgraph/call.ml: Format Graphs Ir
