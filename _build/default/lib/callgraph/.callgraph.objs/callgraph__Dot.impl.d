lib/callgraph/dot.ml: Array Binding Buffer Call Fun Graphs Ir List Printf String
