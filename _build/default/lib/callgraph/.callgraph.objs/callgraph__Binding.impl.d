lib/callgraph/binding.ml: Array Format Graphs Ir List Printf
