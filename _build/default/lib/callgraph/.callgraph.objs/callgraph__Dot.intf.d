lib/callgraph/dot.mli: Binding Call
