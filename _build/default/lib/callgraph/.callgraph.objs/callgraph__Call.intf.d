lib/callgraph/call.mli: Bitvec Format Graphs Ir
