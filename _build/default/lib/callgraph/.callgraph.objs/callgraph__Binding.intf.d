lib/callgraph/binding.mli: Format Graphs Ir
