(** Graphviz (DOT) export of the two multi-graphs, for inspecting what
    the analysis actually runs on.

    Call multi-graph: one node per procedure (labelled with name and
    nesting level), one edge per call site (labelled with the site id).
    Binding multi-graph: one node per by-reference formal (labelled
    [proc.formal]), one edge per binding event (labelled with its site;
    dashed when the binding passes an array element). *)

val call_graph : Call.t -> string

val binding_graph : Binding.t -> string

val write_file : string -> string -> unit
(** [write_file path dot] — tiny convenience used by the CLI. *)
