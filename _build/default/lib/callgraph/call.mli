(** The call multi-graph [C = (N_C, E_C)] of §2: one node per
    procedure, one edge per call site.

    Edge ids coincide with call-site ids — the builder inserts edges in
    increasing [sid] — so per-site data needs no indirection. *)

type t = {
  prog : Ir.Prog.t;
  graph : Graphs.Digraph.t;  (** Node = pid; edge id = sid. *)
}

val build : Ir.Prog.t -> t

val site_of_edge : t -> Graphs.Digraph.edge_id -> Ir.Prog.site

val reachable_from_main : t -> Bitvec.t
(** Procedures reachable from the main block by call chains (main
    included).  The paper assumes every procedure is reachable;
    workload generators guarantee it, and the test suite checks it with
    this. *)

val pp_stats : Format.formatter -> t -> unit
(** One line: procedure, call-site and SCC counts. *)
