lib/workload/arrays.mli: Ir
