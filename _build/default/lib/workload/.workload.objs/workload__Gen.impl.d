lib/workload/gen.ml: Array Ir List Printf Random
