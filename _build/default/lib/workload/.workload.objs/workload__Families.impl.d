lib/workload/families.ml: Format Frontend Gen List Printf Random String
