lib/workload/families.mli: Ir
