lib/workload/gen.mli: Ir Random
