lib/workload/arrays.ml: Array Buffer Format Frontend List Printf Random
