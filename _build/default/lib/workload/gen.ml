module Prog = Ir.Prog
module Expr = Ir.Expr
module Stmt = Ir.Stmt
module Types = Ir.Types

type params = {
  n_procs : int;
  n_globals : int;
  max_formals : int;
  ref_fraction : float;
  locals_per_proc : int;
  sites_per_proc : int;
  binding_density : float;
  recursion : float;
  max_depth : int;
  stmts_per_proc : int;
}

let default =
  {
    n_procs = 100;
    n_globals = 30;
    max_formals = 5;
    ref_fraction = 0.7;
    locals_per_proc = 3;
    sites_per_proc = 3;
    binding_density = 0.5;
    recursion = 0.2;
    max_depth = 1;
    stmts_per_proc = 4;
  }

let flip rng p = Random.State.float rng 1.0 < p
let pick rng l = List.nth l (Random.State.int rng (List.length l))

let generate rng (p : params) =
  if p.n_procs < 0 || p.max_depth < 1 then invalid_arg "Gen.generate";
  let np = p.n_procs + 1 in
  (* Nesting tree.  Parents precede children in pid order. *)
  let parent = Array.make np (-1) in
  let level = Array.make np 0 in
  for pid = 1 to np - 1 do
    let par =
      if p.max_depth <= 1 then 0
      else begin
        (* Sample a few candidates; fall back to main. *)
        let rec try_pick n =
          if n = 0 then 0
          else begin
            let cand = Random.State.int rng pid in
            if level.(cand) < p.max_depth then cand else try_pick (n - 1)
          end
        in
        try_pick 4
      end
    in
    parent.(pid) <- par;
    level.(pid) <- level.(par) + 1
  done;
  let nested = Array.make np [] in
  for pid = np - 1 downto 1 do
    nested.(parent.(pid)) <- pid :: nested.(parent.(pid))
  done;
  (* Variables: globals, then per-procedure formals and locals. *)
  let vars = ref [] in
  let n_vars = ref 0 in
  let fresh_var ~name ~kind =
    let vid = !n_vars in
    incr n_vars;
    vars := { Prog.vid; vname = name; vty = Types.Int; kind } :: !vars;
    vid
  in
  let globals =
    List.init p.n_globals (fun i -> fresh_var ~name:(Printf.sprintf "g%d" i) ~kind:Prog.Global)
  in
  let formals = Array.make np [||] in
  let modes = Array.make np [||] in
  let locals = Array.make np [] in
  for pid = 1 to np - 1 do
    let nf = Random.State.int rng (p.max_formals + 1) in
    let ms =
      Array.init nf (fun _ ->
          if flip rng p.ref_fraction then Prog.By_ref else Prog.By_value)
    in
    modes.(pid) <- ms;
    formals.(pid) <-
      Array.init nf (fun index ->
          fresh_var
            ~name:(Printf.sprintf "a%d_%d" pid index)
            ~kind:(Prog.Formal { proc = pid; index; mode = ms.(index) }));
    let nl = Random.State.int rng (p.locals_per_proc + 1) in
    locals.(pid) <-
      List.init nl (fun i ->
          fresh_var ~name:(Printf.sprintf "t%d_%d" pid i) ~kind:(Prog.Local pid))
  done;
  (* Scope views. *)
  let ancestors pid =
    let rec up pid acc = if pid < 0 then acc else up parent.(pid) (pid :: acc) in
    up pid []
  in
  let visible_scalars = Array.make np [] in
  let visible_ref_formals = Array.make np [] in
  for pid = 0 to np - 1 do
    let anc = ancestors pid in
    let own =
      List.concat_map
        (fun a ->
          Array.to_list formals.(a) @ locals.(a))
        anc
    in
    visible_scalars.(pid) <- globals @ own;
    visible_ref_formals.(pid) <-
      List.concat_map
        (fun a ->
          Array.to_list formals.(a)
          |> List.filteri (fun i _ -> modes.(a).(i) = Prog.By_ref))
        anc
  done;
  (* Callable procedures: children of any ancestor (so: self, siblings,
     ancestors, ancestors' siblings, own children). *)
  let callable = Array.make np [] in
  for pid = 0 to np - 1 do
    callable.(pid) <- List.concat_map (fun a -> nested.(a)) (ancestors pid)
  done;
  (* Bodies. *)
  let sites = ref [] in
  let n_sites = ref 0 in
  let rand_expr pid =
    let scalars = visible_scalars.(pid) in
    let atom () =
      if scalars = [] || flip rng 0.3 then Expr.Int (Random.State.int rng 100)
      else Expr.Var (pick rng scalars)
    in
    if flip rng 0.5 then atom ()
    else Expr.Binop ((if flip rng 0.5 then Expr.Add else Expr.Sub), atom (), atom ())
  in
  let rand_cond pid =
    let scalars = visible_scalars.(pid) in
    if scalars = [] then Expr.Bool true
    else Expr.Binop (Expr.Lt, Expr.Var (pick rng scalars), Expr.Int (Random.State.int rng 100))
  in
  let make_call caller callee =
    let args =
      Array.init
        (Array.length formals.(callee))
        (fun i ->
          match modes.(callee).(i) with
          | Prog.By_value -> Prog.Arg_value (rand_expr caller)
          | Prog.By_ref ->
            let refs = visible_ref_formals.(caller) in
            if refs <> [] && flip rng p.binding_density then
              Prog.Arg_ref (Expr.Lvar (pick rng refs))
            else begin
              let scalars = visible_scalars.(caller) in
              let v =
                if scalars = [] then List.nth globals 0 else pick rng scalars
              in
              Prog.Arg_ref (Expr.Lvar v)
            end)
    in
    let sid = !n_sites in
    incr n_sites;
    sites := { Prog.sid; caller; callee; args } :: !sites;
    Stmt.Call sid
  in
  let body_of pid =
    let stmts = ref [] in
    (* Guaranteed reachability: call every child once. *)
    List.iter (fun c -> stmts := make_call pid c :: !stmts) nested.(pid);
    (* Extra calls. *)
    let extra = Random.State.int rng (1 + (2 * p.sites_per_proc)) in
    for _ = 1 to extra do
      match callable.(pid) with
      | [] -> ()
      | all ->
        let forward = List.filter (fun q -> q > pid) all in
        let pool = if flip rng p.recursion || forward = [] then all else forward in
        stmts := make_call pid (pick rng pool) :: !stmts
    done;
    (* Assignments and a little control flow. *)
    let n_assign = 1 + Random.State.int rng p.stmts_per_proc in
    for _ = 1 to n_assign do
      match visible_scalars.(pid) with
      | [] -> ()
      | scalars ->
        let target = pick rng scalars in
        let s = Stmt.Assign (Expr.Lvar target, rand_expr pid) in
        (* Wrap some statements in control flow.  Loops are bounded
           [for]s rather than [while]s: to the flow-insensitive
           analysis they are equivalent, and bounded loops keep the
           generated programs executable by the tracing interpreter
           (the dynamic-oracle tests and the P1 precision experiment
           need runs that make progress). *)
        let s =
          if flip rng 0.2 then Stmt.If (rand_cond pid, [ s ], [])
          else if flip rng 0.1 then
            Stmt.For (target, Expr.Int 1, Expr.Int 2, [ s ])
          else s
        in
        stmts := s :: !stmts
    done;
    (* Shuffle for a less regular statement order. *)
    let a = Array.of_list !stmts in
    for i = Array.length a - 1 downto 1 do
      let j = Random.State.int rng (i + 1) in
      let t = a.(i) in
      a.(i) <- a.(j);
      a.(j) <- t
    done;
    Array.to_list a
  in
  (* Explicit loop: site ids must follow increasing pid (Array.init's
     evaluation order is unspecified). *)
  let bodies = Array.make np [] in
  for pid = 0 to np - 1 do
    bodies.(pid) <- body_of pid
  done;
  let procs =
    Array.init np (fun pid ->
        {
          Prog.pid;
          pname = (if pid = 0 then "main" else Printf.sprintf "p%d" pid);
          parent = (if pid = 0 then None else Some parent.(pid));
          level = level.(pid);
          formals = formals.(pid);
          locals = locals.(pid);
          nested = nested.(pid);
          body = bodies.(pid);
        })
  in
  {
    Prog.name = "main";
    vars = Array.of_list (List.rev !vars);
    procs;
    sites = Array.of_list (List.rev !sites);
    main = 0;
  }

let source rng p = Ir.Pp.to_string (generate rng p)
