(** Array-kernel workload generator for the §6 regular-section
    analysis.

    Generates flat MiniProc programs over a pool of global 2-D arrays
    and a chain of kernel procedures drawn from the §6 repertoire: row
    writers, column writers, element writers, whole-array sweeps,
    row readers, forwarders (which pass their array parameter on —
    producing identity binding-function edges in β), and element
    forwarders (called with [A[i, j]] actuals — restriction edges).
    Main drives them from [for] loops, so the {!Sections.Deps}
    parallelisation question is meaningful on every generated program.

    Programs are built as source text and compiled through the real
    front end; a generation is deterministic in [seed]. *)

val generate : seed:int -> n_kernels:int -> Ir.Prog.t

val source : seed:int -> n_kernels:int -> string
