let dim = 16

type kind =
  | Row_writer
  | Col_writer
  | Elem_writer
  | Whole_writer
  | Row_reader
  | Forwarder
  | Elem_forwarder

let kinds =
  [| Row_writer; Col_writer; Elem_writer; Whole_writer; Row_reader; Forwarder;
     Elem_forwarder |]

let array_ty = Printf.sprintf "array[%d, %d] of int" dim dim

(* Emit one kernel procedure.  [targets] are earlier kernels a
   forwarder may call (name, kind). *)
let emit_proc buf rng name kind targets =
  let b fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  match kind with
  | Row_writer ->
    b "procedure %s(var a : %s; i : int);\nvar j : int;\nbegin\n" name array_ty;
    b "  for j := 1 to n do\n    a[i, j] := a[i, j] + 1;\n  end;\nend;\n"
  | Col_writer ->
    b "procedure %s(var a : %s; i : int);\nvar j : int;\nbegin\n" name array_ty;
    b "  for j := 1 to n do\n    a[j, i] := 0;\n  end;\nend;\n"
  | Elem_writer ->
    b "procedure %s(var a : %s; i : int; j : int);\nbegin\n" name array_ty;
    b "  a[i, j] := i + j;\nend;\n"
  | Whole_writer ->
    b "procedure %s(var a : %s);\nvar i, j : int;\nbegin\n" name array_ty;
    b "  for i := 1 to n do\n    for j := 1 to n do\n      a[i, j] := 0;\n    end;\n  end;\nend;\n"
  | Row_reader ->
    b "procedure %s(i : int);\nvar j : int;\nbegin\n" name;
    b "  for j := 1 to n do\n    total := total + garr0[i, j];\n  end;\nend;\n"
  | Forwarder -> (
    (* Pass the whole array on to an earlier array-taking kernel. *)
    let array_targets =
      List.filter
        (fun (_, k) ->
          match k with
          | Row_writer | Col_writer | Whole_writer -> true
          | Elem_writer | Row_reader | Forwarder | Elem_forwarder -> false)
        targets
    in
    match array_targets with
    | [] ->
      b "procedure %s(var a : %s; i : int);\nbegin\n  a[i, i] := 1;\nend;\n" name
        array_ty
    | ts ->
      let tname, tkind = List.nth ts (Random.State.int rng (List.length ts)) in
      b "procedure %s(var a : %s; i : int);\nbegin\n" name array_ty;
      (match tkind with
      | Whole_writer -> b "  call %s(a);\n" tname
      | _ -> b "  call %s(a, i);\n" tname);
      b "end;\n")
  | Elem_forwarder ->
    b "procedure %s(var e : int);\nbegin\n  e := e + 1;\nend;\n" name

let source ~seed ~n_kernels =
  let rng = Random.State.make [| seed; n_kernels; 0xa44a |] in
  let buf = Buffer.create 4096 in
  let b fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  let n_arrays = 1 + Random.State.int rng 3 in
  b "program kernels;\nvar n, total, iv, jv : int;\n";
  for a = 0 to n_arrays - 1 do
    b "var garr%d : %s;\n" a array_ty
  done;
  let procs = ref [] in
  for k = 0 to n_kernels - 1 do
    let kind = kinds.(Random.State.int rng (Array.length kinds)) in
    let name = Printf.sprintf "k%d" k in
    emit_proc buf rng name kind !procs;
    procs := (name, kind) :: !procs
  done;
  (* main: drive every kernel from a loop so all are reachable. *)
  b "begin\n  n := %d;\n" dim;
  List.iter
    (fun (name, kind) ->
      let arr = Printf.sprintf "garr%d" (Random.State.int rng n_arrays) in
      match kind with
      | Row_writer | Col_writer | Forwarder ->
        b "  for iv := 1 to n do\n    call %s(%s, iv);\n  end;\n" name arr
      | Elem_writer ->
        b "  for iv := 1 to n do\n    call %s(%s, iv, 3);\n  end;\n" name arr
      | Whole_writer -> b "  call %s(%s);\n" name arr
      | Row_reader -> b "  for iv := 1 to n do\n    call %s(iv);\n  end;\n" name
      | Elem_forwarder ->
        b "  for iv := 1 to n do\n    call %s(%s[iv, 2]);\n  end;\n" name arr)
    (List.rev !procs);
  b "end.\n";
  Buffer.contents buf

let generate ~seed ~n_kernels =
  let src = source ~seed ~n_kernels in
  match Frontend.Sema.compile ~file:"<arrays>" src with
  | Ok p -> p
  | Error errs ->
    invalid_arg
      (Format.asprintf "Workload.Arrays: generated source rejected:@ %a@ ---@ %s"
         (Format.pp_print_list Frontend.Sema.pp_error)
         errs src)
