(** Synthetic MiniProc program generator.

    Produces well-formed {!Ir.Prog} values (checked by
    {!Ir.Validate} in the test suite) whose shape parameters span the
    regimes the paper reasons about: number of procedures [N], call
    sites per procedure (so [E ≈ sites_per_proc·N]), formals per
    procedure (the paper's [k ≥ max(µ_f, µ_a)]), number of globals
    (the paper assumes it grows with program size), fraction of
    by-reference formals, the probability that a by-reference actual is
    itself a formal (β's edge density), recursion, and procedure
    nesting depth.

    Guarantees, independent of the random draw:
    - every procedure is reachable from main (each parent calls each of
      its children at least once, and top-level procedures hang off
      main), matching the paper's standing assumption;
    - static scoping is respected, so the programs also pretty-print
      and re-parse ({!Ir.Pp} / {!Frontend}).

    All randomness comes from the caller's [Random.State.t]. *)

type params = {
  n_procs : int;  (** Procedures besides main. *)
  n_globals : int;
  max_formals : int;  (** Per procedure, uniform in [0..max_formals]. *)
  ref_fraction : float;  (** Probability a formal is by-reference. *)
  locals_per_proc : int;  (** Uniform in [0..locals_per_proc]. *)
  sites_per_proc : int;  (** Extra random call sites per procedure, on top of the one guaranteed call to each child. *)
  binding_density : float;
      (** Probability a by-reference actual is a visible by-reference
          formal (creating a β edge) rather than a local or global. *)
  recursion : float;
      (** Probability a random call site may target any callable
          procedure (enabling cycles) rather than only
          higher-numbered ones. *)
  max_depth : int;  (** Maximum procedure nesting level ([>= 1]). *)
  stmts_per_proc : int;  (** Extra non-call statements, uniform in [1..]. *)
}

val default : params
(** Moderate everything: a program in the spirit of the paper's
    Fortran examples.  [n_procs = 100], [k ≈ 3], flat. *)

val generate : Random.State.t -> params -> Ir.Prog.t

val source : Random.State.t -> params -> string
(** [generate] then pretty-print — a convenience for exercising the
    whole front end. *)
