(** Call-site inlining — the classic consumer of interprocedural
    summaries (a compiler inlines precisely where the summary machinery
    of this library says it is profitable and legal), and a demanding
    exerciser of the IR: the test-suite checks that inlining preserves
    the interpreter's observable behaviour and that the analysis
    remains sound on the transformed program.

    [site prog ~sid] replaces the call statement at site [sid] with the
    callee's body:

    - by-reference formals are substituted by the actual variables
      (exact: the formal named the same cell);
    - by-value formals become fresh locals of the caller, initialised
      from the actual expressions at the inline point;
    - callee locals become fresh locals of the caller (renamed
      [inl<sid>_<name>] to keep the program printable);
    - call sites inside the inlined body become new sites of the
      caller, with their argument expressions substituted.

    The whole site table is renumbered (dense sids); the transformed
    program revalidates.

    Restrictions ({!inlinable} returns [false] otherwise):
    - the callee declares no nested procedures (their bodies capture
      the callee's frame);
    - no by-reference actual is an array {e element} (its subscripts
      would need re-evaluation at every use);
    - neither the caller's own formals/locals nor visibility are
      otherwise affected, so any callee qualifies regardless of what it
      calls — including the caller itself (one unfolding of
      recursion). *)

val inlinable : Ir.Prog.t -> int -> bool
(** By site id. *)

val site : Ir.Prog.t -> sid:int -> Ir.Prog.t option
(** [None] iff not {!inlinable}. *)

val inline_all_once : Ir.Prog.t -> max:int -> Ir.Prog.t
(** Repeatedly inline the lowest-numbered inlinable site, at most [max]
    times — a crude bottom-up inliner used by tests and the ablation
    demo. *)
