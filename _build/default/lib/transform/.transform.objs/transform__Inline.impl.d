lib/transform/inline.ml: Array Hashtbl Ir List Option Printf
