lib/transform/inline.mli: Ir
