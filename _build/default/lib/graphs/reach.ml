let from g root =
  let n = Digraph.n_nodes g in
  let seen = Bitvec.create n in
  let stack = ref [ root ] in
  Bitvec.set seen root;
  let rec loop () =
    match !stack with
    | [] -> ()
    | v :: rest ->
      stack := rest;
      Digraph.iter_succ g v (fun w ->
          if not (Bitvec.get seen w) then begin
            Bitvec.set seen w;
            stack := w :: !stack
          end);
      loop ()
  in
  loop ();
  seen

let all g = Array.init (Digraph.n_nodes g) (fun v -> from g v)

let reaches g ~src ~dst = Bitvec.get (from g src) dst
