(** Strongly-connected components, via an iterative version of Tarjan's
    algorithm [Tarj 72] — the engine under both halves of the paper:
    Figure 1 condenses the binding multi-graph with it, and Figure 2's
    [findgmod] is a direct extension of it.

    Components are numbered in the order Tarjan closes them, which is
    reverse topological order of the condensation: for any edge
    [u -> v] with [comp u <> comp v], [comp u > comp v].  Solvers that
    walk components [0, 1, 2, ...] therefore see every successor
    component before its predecessors — exactly the leaves-to-roots
    traversal step (3) of Figure 1 asks for. *)

type result = {
  n_comps : int;  (** Number of strongly-connected components. *)
  comp : int array;  (** [comp.(v)] is the component of node [v]. *)
}

val compute : Digraph.t -> result
(** Tarjan's algorithm over every root, iteratively (no OS-stack
    recursion), in [O(N + E)]. *)

val members : result -> Digraph.node list array
(** [members r] lists, per component, its nodes (ascending). *)

val representative : result -> Digraph.node array
(** One designated node per component (the smallest-numbered one). *)

val condense : Digraph.t -> result -> Digraph.t
(** The condensation: one node per component, one edge per
    inter-component edge of the original graph, duplicates removed.
    The result is a DAG. *)

val is_trivial : Digraph.t -> result -> int -> bool
(** [is_trivial g r c] is [true] iff component [c] is a single node
    with no self-edge — i.e. not a cycle.  (Tarjan's convention keeps
    such nodes as singleton components.) *)
