type edge_kind = Tree | Forward | Back | Cross

type t = {
  pre : int array;
  post : int array;
  parent : int array;
  kind : edge_kind array;
  order : int array;
}

let run ?roots g =
  let n = Digraph.n_nodes g in
  let m = Digraph.n_edges g in
  let pre = Array.make n (-1) in
  let post = Array.make n (-1) in
  let parent = Array.make n (-1) in
  let kind = Array.make m Cross in
  let order = Array.make n (-1) in
  let next_pre = ref 0 in
  let next_post = ref 0 in
  (* Out-edge ids per node, materialised once for cursor-based
     iteration. *)
  let edges = Array.make n [||] in
  for v = 0 to n - 1 do
    let deg = Digraph.out_degree g v in
    let a = Array.make deg 0 in
    let i = ref 0 in
    Digraph.iter_out_edges g v (fun e _ ->
        a.(!i) <- e;
        incr i);
    edges.(v) <- a
  done;
  let frame_node = Array.make (n + 1) 0 in
  let frame_next = Array.make (n + 1) 0 in
  let visit root =
    let sp = ref 0 in
    let push v p =
      pre.(v) <- !next_pre;
      order.(!next_pre) <- v;
      incr next_pre;
      parent.(v) <- p;
      frame_node.(!sp) <- v;
      frame_next.(!sp) <- 0;
      incr sp
    in
    if pre.(root) = -1 then begin
      push root (-1);
      while !sp > 0 do
        let v = frame_node.(!sp - 1) in
        let i = frame_next.(!sp - 1) in
        if i < Array.length edges.(v) then begin
          frame_next.(!sp - 1) <- i + 1;
          let e = edges.(v).(i) in
          let w = Digraph.edge_dst g e in
          if pre.(w) = -1 then begin
            kind.(e) <- Tree;
            push w v
          end
          else if post.(w) = -1 then kind.(e) <- Back
          else if pre.(w) > pre.(v) then kind.(e) <- Forward
          else kind.(e) <- Cross
        end
        else begin
          decr sp;
          post.(v) <- !next_post;
          incr next_post
        end
      done
    end
  in
  (match roots with
  | Some rs -> List.iter visit rs
  | None ->
    for v = 0 to n - 1 do
      visit v
    done);
  { pre; post; parent; kind; order }

let is_ancestor t ~anc ~desc =
  t.pre.(anc) <= t.pre.(desc) && t.post.(anc) >= t.post.(desc)

let pp_kind ppf = function
  | Tree -> Format.pp_print_string ppf "tree"
  | Forward -> Format.pp_print_string ppf "forward"
  | Back -> Format.pp_print_string ppf "back"
  | Cross -> Format.pp_print_string ppf "cross"
