lib/graphs/reach.mli: Bitvec Digraph
