lib/graphs/dfs.ml: Array Digraph Format List
