lib/graphs/dfs.mli: Digraph Format
