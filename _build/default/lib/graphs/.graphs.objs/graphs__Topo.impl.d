lib/graphs/topo.ml: Array Dfs Digraph List Queue
