lib/graphs/gen.ml: Array Digraph List Random
