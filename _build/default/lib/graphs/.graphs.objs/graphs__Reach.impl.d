lib/graphs/reach.ml: Array Bitvec Digraph
