lib/graphs/scc.ml: Array Digraph List
