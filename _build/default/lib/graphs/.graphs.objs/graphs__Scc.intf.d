lib/graphs/scc.mli: Digraph
