lib/graphs/gen.mli: Digraph Random
