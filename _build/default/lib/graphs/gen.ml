let random rng ~nodes ~edges =
  if nodes <= 0 then invalid_arg "Gen.random: need at least one node";
  let b = Digraph.Builder.create ~nodes () in
  for _ = 1 to edges do
    let s = Random.State.int rng nodes and d = Random.State.int rng nodes in
    ignore (Digraph.Builder.add_edge b ~src:s ~dst:d)
  done;
  Digraph.Builder.freeze b

let shuffle rng a =
  for i = Array.length a - 1 downto 1 do
    let j = Random.State.int rng (i + 1) in
    let t = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- t
  done

let random_dag rng ~nodes ~edges =
  if nodes <= 1 then invalid_arg "Gen.random_dag: need at least two nodes";
  let order = Array.init nodes (fun i -> i) in
  shuffle rng order;
  let b = Digraph.Builder.create ~nodes () in
  for _ = 1 to edges do
    let i = Random.State.int rng (nodes - 1) in
    let j = i + 1 + Random.State.int rng (nodes - i - 1) in
    ignore (Digraph.Builder.add_edge b ~src:order.(i) ~dst:order.(j))
  done;
  Digraph.Builder.freeze b

let chain n =
  Digraph.of_edges ~nodes:n (List.init (max 0 (n - 1)) (fun i -> (i, i + 1)))

let cycle n =
  if n < 1 then invalid_arg "Gen.cycle";
  Digraph.of_edges ~nodes:n (List.init n (fun i -> (i, (i + 1) mod n)))

let complete n =
  let b = Digraph.Builder.create ~nodes:n () in
  for s = 0 to n - 1 do
    for d = 0 to n - 1 do
      if s <> d then ignore (Digraph.Builder.add_edge b ~src:s ~dst:d)
    done
  done;
  Digraph.Builder.freeze b

let tree rng ~nodes ~arity =
  if nodes <= 0 then invalid_arg "Gen.tree";
  if arity <= 0 then invalid_arg "Gen.tree: arity must be positive";
  let b = Digraph.Builder.create ~nodes () in
  let child_count = Array.make nodes 0 in
  for v = 1 to nodes - 1 do
    (* Pick a parent among earlier nodes with spare arity; fall back to
       the immediately preceding node if the sample is saturated. *)
    let rec pick tries =
      let p = Random.State.int rng v in
      if child_count.(p) < arity || tries > 8 then p else pick (tries + 1)
    in
    let p = pick 0 in
    child_count.(p) <- child_count.(p) + 1;
    ignore (Digraph.Builder.add_edge b ~src:p ~dst:v)
  done;
  Digraph.Builder.freeze b

let clustered rng ~clusters ~cluster_size ~extra =
  if clusters <= 0 || cluster_size <= 0 then invalid_arg "Gen.clustered";
  let nodes = clusters * cluster_size in
  let b = Digraph.Builder.create ~nodes () in
  for c = 0 to clusters - 1 do
    let base = c * cluster_size in
    for i = 0 to cluster_size - 1 do
      ignore
        (Digraph.Builder.add_edge b ~src:(base + i)
           ~dst:(base + ((i + 1) mod cluster_size)))
    done
  done;
  if clusters > 1 then
    for _ = 1 to extra do
      let c1 = Random.State.int rng (clusters - 1) in
      let c2 = c1 + 1 + Random.State.int rng (clusters - c1 - 1) in
      let s = (c1 * cluster_size) + Random.State.int rng cluster_size in
      let d = (c2 * cluster_size) + Random.State.int rng cluster_size in
      ignore (Digraph.Builder.add_edge b ~src:s ~dst:d)
    done;
  Digraph.Builder.freeze b
