(* Iterative Tarjan.  The recursion of the textbook version is replaced
   by an explicit frame stack of (node, out-edge cursor) pairs so that
   deep call chains (one of the workload families) cannot overflow the
   OCaml stack. *)

type result = {
  n_comps : int;
  comp : int array;
}

let compute g =
  let n = Digraph.n_nodes g in
  let dfn = Array.make n 0 in
  let low = Array.make n 0 in
  let comp = Array.make n (-1) in
  let on_stack = Array.make n false in
  let tarjan_stack = ref [] in
  let next_dfn = ref 1 in
  let n_comps = ref 0 in
  (* Explicit DFS frames. *)
  let frame_node = Array.make (n + 1) 0 in
  let frame_next = Array.make (n + 1) 0 in
  (* frame_next.(sp) indexes into the successor sequence of
     frame_node.(sp); we re-enumerate successors via succ array. *)
  let succs = Array.make n [||] in
  for v = 0 to n - 1 do
    let deg = Digraph.out_degree g v in
    let a = Array.make deg 0 in
    let i = ref 0 in
    Digraph.iter_succ g v (fun w ->
        a.(!i) <- w;
        incr i);
    succs.(v) <- a
  done;
  let close_component v =
    (* Pop the Tarjan stack down to [v]; all popped nodes form one
       component, closed in reverse topological order. *)
    let c = !n_comps in
    incr n_comps;
    let rec pop () =
      match !tarjan_stack with
      | [] -> assert false
      | u :: rest ->
        tarjan_stack := rest;
        on_stack.(u) <- false;
        comp.(u) <- c;
        if u <> v then pop ()
    in
    pop ()
  in
  let visit root =
    let sp = ref 0 in
    let push v =
      dfn.(v) <- !next_dfn;
      low.(v) <- !next_dfn;
      incr next_dfn;
      tarjan_stack := v :: !tarjan_stack;
      on_stack.(v) <- true;
      frame_node.(!sp) <- v;
      frame_next.(!sp) <- 0;
      incr sp
    in
    push root;
    while !sp > 0 do
      let v = frame_node.(!sp - 1) in
      let i = frame_next.(!sp - 1) in
      if i < Array.length succs.(v) then begin
        frame_next.(!sp - 1) <- i + 1;
        let w = succs.(v).(i) in
        if dfn.(w) = 0 then push w
        else if on_stack.(w) then low.(v) <- min low.(v) dfn.(w)
      end
      else begin
        decr sp;
        if low.(v) = dfn.(v) then close_component v;
        if !sp > 0 then begin
          let parent = frame_node.(!sp - 1) in
          low.(parent) <- min low.(parent) low.(v)
        end
      end
    done
  in
  for v = 0 to n - 1 do
    if dfn.(v) = 0 then visit v
  done;
  { n_comps = !n_comps; comp }

let members r =
  let out = Array.make r.n_comps [] in
  for v = Array.length r.comp - 1 downto 0 do
    out.(r.comp.(v)) <- v :: out.(r.comp.(v))
  done;
  out

let representative r =
  let rep = Array.make r.n_comps (-1) in
  for v = Array.length r.comp - 1 downto 0 do
    rep.(r.comp.(v)) <- v
  done;
  rep

let condense g r =
  let b = Digraph.Builder.create ~nodes:r.n_comps () in
  (* Deduplicate inter-component edges with a per-source scratch mark
     so condensation stays O(N + E). *)
  let mark = Array.make r.n_comps (-1) in
  let by_comp = members r in
  Array.iteri
    (fun c nodes ->
      List.iter
        (fun v ->
          Digraph.iter_succ g v (fun w ->
              let cw = r.comp.(w) in
              if cw <> c && mark.(cw) <> c then begin
                mark.(cw) <- c;
                ignore (Digraph.Builder.add_edge b ~src:c ~dst:cw)
              end))
        nodes)
    by_comp;
  Digraph.Builder.freeze b

let is_trivial g r c =
  match members r |> fun m -> m.(c) with
  | [ v ] -> not (List.exists (fun w -> w = v) (Digraph.succ_list g v))
  | _ -> false
