let sort g =
  let n = Digraph.n_nodes g in
  let in_degree = Array.make n 0 in
  Digraph.iter_edges g (fun _ _ d -> in_degree.(d) <- in_degree.(d) + 1);
  let queue = Queue.create () in
  for v = 0 to n - 1 do
    if in_degree.(v) = 0 then Queue.add v queue
  done;
  let order = ref [] in
  let emitted = ref 0 in
  while not (Queue.is_empty queue) do
    let v = Queue.pop queue in
    order := v :: !order;
    incr emitted;
    Digraph.iter_succ g v (fun w ->
        in_degree.(w) <- in_degree.(w) - 1;
        if in_degree.(w) = 0 then Queue.add w queue)
  done;
  if !emitted = n then Some (List.rev !order) else None

let reverse_post_order g =
  let t = Dfs.run g in
  let n = Digraph.n_nodes g in
  let order = Array.make n 0 in
  for v = 0 to n - 1 do
    (* Highest postorder first. *)
    order.(n - 1 - t.Dfs.post.(v)) <- v
  done;
  Array.to_list order
