(** Deterministic random graph generators for tests and benchmarks.

    Every generator takes an explicit [Random.State.t] so workloads are
    reproducible from a seed. *)

val random : Random.State.t -> nodes:int -> edges:int -> Digraph.t
(** Uniform random multi-graph: [edges] edges with independently
    uniform endpoints (self-edges and duplicates allowed, as in any
    multi-graph). *)

val random_dag : Random.State.t -> nodes:int -> edges:int -> Digraph.t
(** Random acyclic multi-graph: every edge respects a hidden
    permutation order. *)

val chain : int -> Digraph.t
(** [0 -> 1 -> ... -> n-1]. *)

val cycle : int -> Digraph.t
(** A single directed cycle over [n >= 1] nodes. *)

val complete : int -> Digraph.t
(** All [n·(n-1)] ordered pairs, no self-edges. *)

val tree : Random.State.t -> nodes:int -> arity:int -> Digraph.t
(** Random tree edges parent -> child; each node's parent is uniform
    among earlier nodes, capped at [arity] children where possible. *)

val clustered : Random.State.t -> clusters:int -> cluster_size:int -> extra:int -> Digraph.t
(** [clusters] directed cycles of [cluster_size] nodes plus [extra]
    forward edges between distinct clusters (from lower-numbered to
    higher-numbered clusters, so the condensation stays acyclic).
    Models the recursive-cluster call graphs of §4's analysis. *)
