(** Directed multi-graphs over dense integer nodes.

    Both graphs the paper manipulates — the call multi-graph [C] and
    the binding multi-graph [β] — are multi-graphs: two procedures may
    be connected by several call sites, and one formal may be bound to
    another at several sites.  Edges therefore have identities
    ([edge_id]), so clients can attach payloads (call sites, binding
    functions) in side arrays indexed by edge id.

    Graphs are built through a mutable {!Builder} and then frozen into
    an immutable compressed-sparse-row representation, which the
    linear-time algorithms traverse without allocation. *)

type node = int
(** Nodes are [0 .. n_nodes g - 1]. *)

type edge_id = int
(** Edge ids are [0 .. n_edges g - 1], in order of insertion. *)

type t
(** A frozen directed multi-graph. *)

(** Mutable graph under construction. *)
module Builder : sig
  type graph := t
  type t

  val create : ?nodes:int -> unit -> t
  (** [create ~nodes ()] starts a builder with [nodes] pre-allocated
      nodes (default 0). *)

  val add_node : t -> node
  (** Allocate and return a fresh node. *)

  val ensure_nodes : t -> int -> unit
  (** Grow the node count to at least the given number. *)

  val add_edge : t -> src:node -> dst:node -> edge_id
  (** Append an edge; both endpoints must already exist.  Returns the
      id the edge will carry in the frozen graph. *)

  val n_nodes : t -> int
  val n_edges : t -> int

  val freeze : t -> graph
  (** Produce the immutable graph.  The builder remains usable, but
      later mutations do not affect already-frozen graphs. *)
end

val n_nodes : t -> int
val n_edges : t -> int

val edge_src : t -> edge_id -> node
val edge_dst : t -> edge_id -> node

val iter_succ : t -> node -> (node -> unit) -> unit
(** Visit the destination of every out-edge of a node (with
    multiplicity, in insertion order). *)

val iter_out_edges : t -> node -> (edge_id -> node -> unit) -> unit
(** Visit every out-edge of a node as [(edge id, destination)]. *)

val fold_out_edges : t -> node -> init:'a -> f:('a -> edge_id -> node -> 'a) -> 'a

val succ_list : t -> node -> node list
(** Successors of a node, with multiplicity. *)

val out_degree : t -> node -> int

val iter_edges : t -> (edge_id -> node -> node -> unit) -> unit
(** Visit every edge as [(id, src, dst)], by increasing id. *)

val reverse : t -> t
(** Graph with every edge flipped.  Edge ids are preserved: edge [e]
    of [reverse g] runs from [edge_dst g e] to [edge_src g e]. *)

val of_edges : nodes:int -> (node * node) list -> t
(** Convenience constructor; edge ids follow list order. *)

val pp : Format.formatter -> t -> unit
(** Debug printer: one [src -> dst] line per edge. *)
