(* Frozen graphs use compressed sparse rows: out-edges of node [v] are
   the edge ids in [adj_edges.(adj_start.(v)) ..
   adj_edges.(adj_start.(v+1) - 1)].  Edge endpoints live in flat
   arrays indexed by edge id, so reversing a graph or attaching
   per-edge payloads needs no pointer chasing. *)

type node = int
type edge_id = int

type t = {
  n_nodes : int;
  src : int array; (* edge id -> source node *)
  dst : int array; (* edge id -> destination node *)
  adj_start : int array; (* node -> first index into adj_edges; length n_nodes+1 *)
  adj_edges : int array; (* edge ids grouped by source, insertion order within a source *)
}

module Builder = struct
  type t = {
    mutable nodes : int;
    mutable edges_rev : (int * int) list;
    mutable n_edges : int;
  }

  let create ?(nodes = 0) () =
    if nodes < 0 then invalid_arg "Digraph.Builder.create";
    { nodes; edges_rev = []; n_edges = 0 }

  let add_node b =
    let v = b.nodes in
    b.nodes <- v + 1;
    v

  let ensure_nodes b n = if n > b.nodes then b.nodes <- n

  let add_edge b ~src ~dst =
    if src < 0 || src >= b.nodes || dst < 0 || dst >= b.nodes then
      invalid_arg
        (Printf.sprintf "Digraph.Builder.add_edge: (%d, %d) with %d nodes" src dst
           b.nodes);
    let id = b.n_edges in
    b.edges_rev <- (src, dst) :: b.edges_rev;
    b.n_edges <- id + 1;
    id

  let n_nodes b = b.nodes
  let n_edges b = b.n_edges

  let freeze b =
    let m = b.n_edges in
    let src = Array.make m 0 and dst = Array.make m 0 in
    (* edges_rev holds edges in reverse insertion order. *)
    let rec fill i = function
      | [] -> ()
      | (s, d) :: rest ->
        src.(i) <- s;
        dst.(i) <- d;
        fill (i - 1) rest
    in
    fill (m - 1) b.edges_rev;
    let adj_start = Array.make (b.nodes + 1) 0 in
    Array.iter (fun s -> adj_start.(s + 1) <- adj_start.(s + 1) + 1) src;
    for v = 1 to b.nodes do
      adj_start.(v) <- adj_start.(v) + adj_start.(v - 1)
    done;
    let cursor = Array.copy adj_start in
    let adj_edges = Array.make m 0 in
    for e = 0 to m - 1 do
      let s = src.(e) in
      adj_edges.(cursor.(s)) <- e;
      cursor.(s) <- cursor.(s) + 1
    done;
    { n_nodes = b.nodes; src; dst; adj_start; adj_edges }
end

let n_nodes g = g.n_nodes
let n_edges g = Array.length g.src

let check_edge g e =
  if e < 0 || e >= Array.length g.src then invalid_arg "Digraph: bad edge id"

let edge_src g e =
  check_edge g e;
  g.src.(e)

let edge_dst g e =
  check_edge g e;
  g.dst.(e)

let check_node g v =
  if v < 0 || v >= g.n_nodes then invalid_arg "Digraph: bad node"

let iter_out_edges g v f =
  check_node g v;
  for i = g.adj_start.(v) to g.adj_start.(v + 1) - 1 do
    let e = g.adj_edges.(i) in
    f e g.dst.(e)
  done

let iter_succ g v f = iter_out_edges g v (fun _ w -> f w)

let fold_out_edges g v ~init ~f =
  let acc = ref init in
  iter_out_edges g v (fun e w -> acc := f !acc e w);
  !acc

let succ_list g v =
  List.rev (fold_out_edges g v ~init:[] ~f:(fun acc _ w -> w :: acc))

let out_degree g v =
  check_node g v;
  g.adj_start.(v + 1) - g.adj_start.(v)

let iter_edges g f =
  for e = 0 to Array.length g.src - 1 do
    f e g.src.(e) g.dst.(e)
  done

let reverse g =
  let b = Builder.create ~nodes:g.n_nodes () in
  (* Re-adding edges in id order preserves ids under the flip. *)
  iter_edges g (fun _ s d -> ignore (Builder.add_edge b ~src:d ~dst:s));
  Builder.freeze b

let of_edges ~nodes edges =
  let b = Builder.create ~nodes () in
  List.iter (fun (s, d) -> ignore (Builder.add_edge b ~src:s ~dst:d)) edges;
  Builder.freeze b

let pp ppf g =
  Format.fprintf ppf "@[<v>digraph (%d nodes, %d edges)" g.n_nodes (n_edges g);
  iter_edges g (fun e s d -> Format.fprintf ppf "@,  e%d: %d -> %d" e s d);
  Format.fprintf ppf "@]"
