(** Depth-first search with edge classification.

    [findgmod]'s correctness argument (Lemmas 1 and 2 of the paper)
    speaks of tree, forward, back and cross edges of the depth-first
    search forest over the call multi-graph; this module computes that
    classification so the test suite can check the lemmas directly on
    the analyzer's output. *)

type edge_kind =
  | Tree  (** First visit of the destination. *)
  | Forward  (** Destination is a proper DFS descendant, already visited. *)
  | Back  (** Destination is a DFS ancestor (possibly the source itself). *)
  | Cross  (** Destination in an already-finished subtree. *)

type t = {
  pre : int array;  (** Preorder (discovery) number per node, from 0. *)
  post : int array;  (** Postorder (finish) number per node, from 0. *)
  parent : int array;  (** DFS-tree parent, [-1] for roots. *)
  kind : edge_kind array;  (** Classification per edge id. *)
  order : int array;  (** Nodes in discovery order. *)
}

val run : ?roots:int list -> Digraph.t -> t
(** Search from each root in turn (default: nodes [0, 1, ...] so every
    node is covered), iteratively.  With explicit [roots], nodes not
    reached from them keep [pre = -1], [post = -1], and the
    classification of edges touching them is meaningless. *)

val is_ancestor : t -> anc:int -> desc:int -> bool
(** [true] iff [anc] is an ancestor of (or equal to) [desc] in the DFS
    forest, judged by pre/post intervals. *)

val pp_kind : Format.formatter -> edge_kind -> unit
