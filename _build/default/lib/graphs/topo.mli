(** Topological order of a DAG (Kahn's algorithm).

    Used to drive the leaves-to-roots propagation pass of Figure 1 over
    the condensed binding multi-graph, and by tests to validate the
    reverse-topological numbering that {!Scc.compute} promises. *)

val sort : Digraph.t -> Digraph.node list option
(** [sort g] is [Some order] with every edge pointing forward in
    [order], or [None] if [g] has a cycle. *)

val reverse_post_order : Digraph.t -> Digraph.node list
(** Nodes in reverse postorder of a full DFS — a topological order
    whenever the graph is acyclic, defined (but not topological) on
    cyclic graphs too. *)
