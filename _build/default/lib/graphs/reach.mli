(** Reachability over directed graphs.

    [GMOD] is "a generalization of the reachability problem" (§4):
    [GMOD(p)] collects effects of every procedure reachable from [p].
    This module is the brute-force form of that statement — one DFS per
    source — which the baseline library and the test oracle build on. *)

val from : Digraph.t -> Digraph.node -> Bitvec.t
(** [from g v] is the set of nodes reachable from [v], including [v]
    itself (the paper follows Tarjan's empty-path convention). *)

val all : Digraph.t -> Bitvec.t array
(** [all g] is [from g v] for every [v] — [O(N·(N+E))]. *)

val reaches : Digraph.t -> src:Digraph.node -> dst:Digraph.node -> bool
