(** Hand-written lexer for MiniProc.

    Supports nested [(* ... *)] block comments and [// ...] line
    comments.  All tokens carry the location of their first
    character. *)

exception Error of Loc.t * string
(** Raised on an unexpected character, an unterminated comment, or an
    integer literal that does not fit in an OCaml [int]. *)

val tokenize : ?file:string -> string -> (Token.t * Loc.t) list
(** Scan a whole source string; the final element is always
    [(EOF, loc)]. *)
