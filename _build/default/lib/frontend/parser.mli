(** Recursive-descent parser for MiniProc.

    Grammar (terminators, not separators; [end] closes every block):
    {v
    program   ::= "program" IDENT ";" var-decl* proc-decl* "begin" stmt* "end" "."
    var-decl  ::= "var" IDENT ("," IDENT)* ":" type ";"
    type      ::= "int" | "bool" | "array" "[" INT ("," INT)* "]" "of" "int"
    proc-decl ::= "procedure" IDENT "(" [param (";" param)*] ")" ";"
                  var-decl* proc-decl* "begin" stmt* "end" ";"
    param     ::= ["var"] IDENT ("," IDENT)* ":" type
    stmt      ::= lvalue ":=" expr ";"
                | "if" expr "then" stmt* ["else" stmt*] "end" ";"
                | "while" expr "do" stmt* "end" ";"
                | "for" IDENT ":=" expr "to" expr "do" stmt* "end" ";"
                | "call" IDENT "(" [expr ("," expr)*] ")" ";"
                | "read" lvalue ";"  |  "write" expr ";"  |  "skip" ";"
    lvalue    ::= IDENT ["[" expr ("," expr)* "]"]
    v}
    Expression precedence, loosest first: [or] < [and] < comparisons <
    [+ -] < [* / %] < unary [- not] < atoms. *)

exception Error of Loc.t * string

val parse : ?file:string -> string -> (Ast.program, Loc.t * string) result
(** Parse a complete source string.  Lexical errors are reported
    through the same [Error] channel. *)

val parse_exn : ?file:string -> string -> Ast.program

val parse_expr : ?file:string -> string -> (Ast.expr, Loc.t * string) result
(** Parse a standalone expression (used by tests). *)
