(** Source positions for diagnostics. *)

type t = {
  file : string;
  line : int;  (** 1-based. *)
  col : int;  (** 1-based column of the first character. *)
}

val dummy : t
(** Position used for synthesised nodes. *)

val make : file:string -> line:int -> col:int -> t
val pp : Format.formatter -> t -> unit
(** Prints as [file:line:col]. *)

val to_string : t -> string
