lib/frontend/lexer.ml: List Loc Printf String Token
