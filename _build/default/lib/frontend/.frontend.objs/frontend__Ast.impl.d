lib/frontend/ast.ml: Ir Loc
