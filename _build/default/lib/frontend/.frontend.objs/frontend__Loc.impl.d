lib/frontend/loc.ml: Format
