lib/frontend/ast.mli: Ir Loc
