lib/frontend/sema.mli: Ast Format Ir Loc
