lib/frontend/token.ml: Format List
