lib/frontend/local.ml: Array Bitvec Int Ir List Set
