lib/frontend/local.mli: Bitvec Ir
