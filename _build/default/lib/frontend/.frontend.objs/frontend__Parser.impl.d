lib/frontend/parser.ml: Ast Format Ir Lexer List Loc Result Token
