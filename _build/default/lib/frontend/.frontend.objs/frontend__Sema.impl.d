lib/frontend/sema.ml: Array Ast Format Hashtbl Ir List Loc Map Parser Result String
