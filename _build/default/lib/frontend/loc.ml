type t = {
  file : string;
  line : int;
  col : int;
}

let dummy = { file = "<none>"; line = 0; col = 0 }
let make ~file ~line ~col = { file; line; col }
let pp ppf t = Format.fprintf ppf "%s:%d:%d" t.file t.line t.col
let to_string t = Format.asprintf "%a" pp t
