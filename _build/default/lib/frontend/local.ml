module Prog = Ir.Prog
module Stmt = Ir.Stmt
module Expr = Ir.Expr

module Int_set = Set.Make (Int)

let expr_vars acc e = List.fold_left (fun acc v -> Int_set.add v acc) acc (Expr.vars e)

let lvalue_index_vars acc lv =
  List.fold_left (fun acc v -> Int_set.add v acc) acc (Expr.lvalue_index_vars lv)

let lmod_stmt _p (s : Stmt.t) =
  match s with
  | Stmt.Assign (lv, _) | Stmt.Read lv -> [ Expr.lvalue_base lv ]
  | Stmt.For (v, _, _, _) -> [ v ]
  | Stmt.If _ | Stmt.While _ | Stmt.Call _ | Stmt.Write _ -> []

let luse_stmt p (s : Stmt.t) =
  let set =
    match s with
    | Stmt.Assign (lv, e) -> expr_vars (lvalue_index_vars Int_set.empty lv) e
    | Stmt.If (c, _, _) | Stmt.While (c, _) -> expr_vars Int_set.empty c
    | Stmt.For (v, lo, hi, _) ->
      expr_vars (expr_vars (Int_set.singleton v) lo) hi
    | Stmt.Read lv -> lvalue_index_vars Int_set.empty lv
    | Stmt.Write e -> expr_vars Int_set.empty e
    | Stmt.Call sid ->
      let site = Prog.site p sid in
      Array.fold_left
        (fun acc arg ->
          match arg with
          | Prog.Arg_value e -> expr_vars acc e
          | Prog.Arg_ref lv -> lvalue_index_vars acc lv)
        Int_set.empty site.Prog.args
  in
  Int_set.elements set

(* Per-procedure union of a per-statement set. *)
let flat_union info per_stmt =
  let p = Ir.Info.prog info in
  Array.map
    (fun (pr : Prog.proc) ->
      let acc = Ir.Info.fresh info in
      Stmt.iter
        (fun s -> List.iter (fun v -> Bitvec.set acc v) (per_stmt p s))
        pr.Prog.body;
      acc)
    p.Prog.procs

let imod_flat info = flat_union info lmod_stmt
let iuse_flat info = flat_union info luse_stmt

let imod info = Ir.Info.fold_up_nesting info (imod_flat info)
let iuse info = Ir.Info.fold_up_nesting info (iuse_flat info)
