  $ ../bin/sidefx.exe stats ../programs/bank.mp
  $ ../bin/sidefx.exe analyze ../programs/bank.mp
  $ ../bin/sidefx.exe sections ../programs/stencil.mp
  $ ../bin/sidefx.exe stats ../programs/report.mp
  $ ../bin/sidefx.exe run ../programs/bank.mp
  $ ../bin/sidefx.exe run ../programs/report.mp
  $ ../bin/sidefx.exe run ../programs/stencil.mp
  $ ../bin/sidefx.exe check ../programs/bank.mp
  $ ../bin/sidefx.exe check ../programs/report.mp
  $ ../bin/sidefx.exe constants ../programs/pipeline.mp
  $ ../bin/sidefx.exe run ../programs/pipeline.mp
  $ ../bin/sidefx.exe dot ../programs/bank.mp --graph binding
  $ ../bin/sidefx.exe gen --procs 3 --seed 1 > g.mp
  $ ../bin/sidefx.exe stats g.mp
  $ cat > bad.mp <<'SRC'
  > program p;
  > begin
  >   x := 1;
  > end.
  > SRC
  $ ../bin/sidefx.exe analyze bad.mp
  $ ../bin/sidefx.exe inline ../programs/bank.mp > inlined.mp
  $ ../bin/sidefx.exe run ../programs/bank.mp > before.out
  $ ../bin/sidefx.exe run inlined.mp > after.out
  $ diff before.out after.out
  $ ../bin/sidefx.exe check ../programs/stencil.mp
  $ ../bin/sidefx.exe check ../programs/pipeline.mp
