(* Front-end robustness: arbitrary input must produce either a program
   or a positioned diagnostic — never an exception escaping the API,
   never a crash. *)

let arb_garbage =
  QCheck.make
    ~print:(fun s -> Printf.sprintf "%S" s)
    QCheck.Gen.(string_size ~gen:(map Char.chr (int_range 1 126)) (0 -- 400))

(* Token-soup: structurally plausible fragments glued randomly — much
   better at reaching deep parser states than raw bytes. *)
let fragments =
  [|
    "program"; "procedure"; "var"; "begin"; "end"; "if"; "then"; "else"; "while";
    "do"; "for"; "to"; "call"; "read"; "write"; "skip"; "int"; "bool"; "array";
    "of"; "and"; "or"; "not"; "true"; "false"; ";"; ":"; ","; "."; "("; ")"; "[";
    "]"; ":="; "+"; "-"; "*"; "/"; "%"; "<"; "<="; ">"; ">="; "=="; "!="; "x";
    "y"; "p"; "q"; "0"; "1"; "42"; "\n"; " ";
  |]

let arb_token_soup =
  QCheck.make
    ~print:(fun s -> Printf.sprintf "%S" s)
    QCheck.Gen.(
      map
        (fun picks ->
          String.concat " " (List.map (fun i -> fragments.(i mod Array.length fragments)) picks))
        (list_size (0 -- 120) (0 -- 1000)))

let no_crash src =
  match Frontend.Sema.compile ~file:"<fuzz>" src with
  | Ok prog -> Ir.Validate.run prog = Ok ()
  | Error errs -> errs <> []

let no_crash_expr src =
  match Frontend.Parser.parse_expr src with
  | Ok _ | Error _ -> true

let prop_roundtrip_accepted_soup src =
  (* Anything the front end accepts must validate, print, and reparse
     to the same text. *)
  match Frontend.Sema.compile ~file:"<fuzz>" src with
  | Error _ -> true
  | Ok prog ->
    let s1 = Ir.Pp.to_string prog in
    (match Frontend.Sema.compile ~file:"<fuzz2>" s1 with
    | Error _ -> false
    | Ok p2 -> String.equal s1 (Ir.Pp.to_string p2))

let () =
  Helpers.run "fuzz"
    [
      ( "frontend",
        [
          Helpers.qtest ~count:500 "raw bytes never crash" arb_garbage no_crash;
          Helpers.qtest ~count:500 "token soup never crashes" arb_token_soup no_crash;
          Helpers.qtest ~count:500 "expressions never crash" arb_garbage no_crash_expr;
          Helpers.qtest ~count:500 "accepted soup round-trips" arb_token_soup
            prop_roundtrip_accepted_soup;
        ] );
    ]
