(* The USE problem (the paper's "analogous solution"): RUSE, GUSE,
   USE(s) semantics that differ from MOD in instructive ways. *)

let compile = Helpers.compile

let test_ruse_via_read () =
  let prog =
    compile
      {|program m;
var g : int;
procedure reader(var r : int);
begin
  write r;
end;
procedure passer(var p : int);
begin
  call reader(p);
end;
begin
  call passer(g);
end.|}
  in
  let t = Core.Analyze.run prog in
  (* reading r uses the actual chain all the way up. *)
  Alcotest.(check bool) "RUSE(reader)" true
    (Core.Rmod.modified t.Core.Analyze.ruse (Helpers.var_id prog "reader.r"));
  Alcotest.(check bool) "RUSE(passer)" true
    (Core.Rmod.modified t.Core.Analyze.ruse (Helpers.var_id prog "passer.p"));
  let sid = (List.hd (Ir.Prog.sites_of prog prog.Ir.Prog.main)).Ir.Prog.sid in
  Helpers.check_var_set prog "USE at main" [ "g" ] (Core.Analyze.use_of_site t sid);
  Helpers.check_var_set prog "MOD empty" [] (Core.Analyze.mod_of_site t sid)

let test_write_only_chain () =
  (* By-ref chain that only writes: MOD propagates, USE stays empty. *)
  let prog = Workload.Families.ref_chain 6 in
  let t = Core.Analyze.run prog in
  let sid = (List.hd (Ir.Prog.sites_of prog prog.Ir.Prog.main)).Ir.Prog.sid in
  Helpers.check_var_set prog "MOD" [ "g0" ] (Core.Analyze.mod_of_site t sid);
  Helpers.check_var_set prog "USE" [] (Core.Analyze.use_of_site t sid)

let test_value_arg_always_used () =
  (* Argument evaluation uses its variables even if the callee ignores
     the parameter. *)
  let prog =
    compile
      {|program m;
var g : int;
procedure ignore_it(v : int);
begin
  skip;
end;
begin
  call ignore_it(g + 1);
end.|}
  in
  let t = Core.Analyze.run prog in
  let sid = (List.hd (Ir.Prog.sites_of prog prog.Ir.Prog.main)).Ir.Prog.sid in
  Helpers.check_var_set prog "USE has g" [ "g" ] (Core.Analyze.use_of_site t sid)

let test_guse_globals () =
  let prog =
    compile
      {|program m;
var a, b : int;
procedure deep();
begin
  b := a;
end;
procedure top();
begin
  call deep();
end;
begin
  call top();
end.|}
  in
  let t = Core.Analyze.run prog in
  Helpers.check_var_set prog "GUSE(top)" [ "a" ]
    (Core.Analyze.guse_of t (Helpers.proc_id prog "top"));
  Helpers.check_var_set prog "GMOD(top)" [ "b" ]
    (Core.Analyze.gmod_of t (Helpers.proc_id prog "top"))

let prop_guse_equals_iterative seed =
  let prog = Helpers.flat_of_seed seed in
  let t = Core.Analyze.run prog in
  let oracle =
    Baseline.Iterative.gmod t.Core.Analyze.info t.Core.Analyze.call
      ~imod_plus:t.Core.Analyze.iuse_plus
  in
  Helpers.gmod_arrays_equal t.Core.Analyze.guse oracle

let prop_ruse_equals_iterative seed =
  let prog = Helpers.flat_of_seed seed in
  let t = Core.Analyze.run prog in
  let iuse = t.Core.Analyze.iuse in
  t.Core.Analyze.ruse.Core.Rmod.rmod
  = Baseline.Iterative.rmod t.Core.Analyze.binding ~imod:iuse

let () =
  Helpers.run "use"
    [
      ( "semantics",
        [
          Alcotest.test_case "reads propagate through by-ref chains" `Quick
            test_ruse_via_read;
          Alcotest.test_case "write-only chain: MOD without USE" `Quick
            test_write_only_chain;
          Alcotest.test_case "value arguments always evaluated" `Quick
            test_value_arg_always_used;
          Alcotest.test_case "GUSE vs GMOD on globals" `Quick test_guse_globals;
        ] );
      ( "equivalence",
        [
          Helpers.qtest "GUSE = iterative" Helpers.arb_flat_prog
            prop_guse_equals_iterative;
          Helpers.qtest "RUSE = iterative" Helpers.arb_flat_prog
            prop_ruse_equals_iterative;
        ] );
    ]
