test/test_props.ml: Array Baseline Bitvec Callgraph Core Graphs Helpers Ir
