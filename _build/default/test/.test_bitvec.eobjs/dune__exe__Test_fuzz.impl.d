test/test_fuzz.ml: Array Char Frontend Helpers Ir List Printf QCheck String
