test/test_parser.ml: Alcotest Fmt Frontend Helpers Ir List Printf String Workload
