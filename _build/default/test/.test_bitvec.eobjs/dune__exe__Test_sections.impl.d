test/test_sections.ml: Alcotest Array Bitvec Callgraph Core Fmt Graphs Helpers Ir List Printf QCheck Sections Workload
