test/test_use.ml: Alcotest Baseline Core Helpers Ir List Workload
