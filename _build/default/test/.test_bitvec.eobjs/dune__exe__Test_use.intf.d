test/test_use.mli:
