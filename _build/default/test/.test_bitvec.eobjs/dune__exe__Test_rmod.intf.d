test/test_rmod.mli:
