test/test_rmod.ml: Alcotest Array Baseline Bitvec Callgraph Core Graphs Helpers Ir List Printf Workload
