test/test_validate.ml: Alcotest Array Dump Fmt Helpers Ir List String
