test/test_summary.ml: Alcotest Array Bitvec Core Helpers Ir List Workload
