test/test_interp.ml: Alcotest Array Helpers Interp
