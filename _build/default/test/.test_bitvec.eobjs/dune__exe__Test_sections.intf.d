test/test_sections.mli:
