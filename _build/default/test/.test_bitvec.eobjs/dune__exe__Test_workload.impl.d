test/test_workload.ml: Alcotest Array Bitvec Callgraph Frontend Graphs Helpers Ir Printf QCheck Random Sections String Workload
