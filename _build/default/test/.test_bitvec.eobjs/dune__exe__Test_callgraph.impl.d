test/test_callgraph.ml: Alcotest Array Bitvec Callgraph Graphs Helpers Ir List
