test/test_transform.ml: Alcotest Array Bitvec Core Frontend Helpers Interp Ir List Option Printf Transform
