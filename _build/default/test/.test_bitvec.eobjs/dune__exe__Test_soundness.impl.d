test/test_soundness.ml: Alcotest Array Bitvec Core Helpers Interp Ir List QCheck Sections Workload
