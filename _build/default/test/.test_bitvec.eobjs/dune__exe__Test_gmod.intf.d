test/test_gmod.mli:
