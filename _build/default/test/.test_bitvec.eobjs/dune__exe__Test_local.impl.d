test/test_local.ml: Alcotest Array Bitvec Frontend Helpers Ir List
