test/test_alias.ml: Alcotest Bitvec Core Helpers Ir List
