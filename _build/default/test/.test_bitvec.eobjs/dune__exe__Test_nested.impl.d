test/test_nested.ml: Alcotest Array Baseline Bitvec Callgraph Core Frontend Helpers Ir Workload
