test/test_ir.ml: Alcotest Bitvec Callgraph Helpers Ir List String
