test/test_ipcp.mli:
