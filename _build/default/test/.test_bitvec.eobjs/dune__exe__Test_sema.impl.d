test/test_sema.ml: Alcotest Array Dump Fmt Frontend Helpers Ir List Option String
