test/test_bitvec.ml: Alcotest Bitvec Helpers List Printf QCheck String
