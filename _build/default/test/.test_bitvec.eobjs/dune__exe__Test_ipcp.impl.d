test/test_ipcp.ml: Alcotest Array Bitvec Helpers Interp Ipcp Ir
