test/test_lexer.ml: Alcotest Fmt Frontend Helpers List String
