test/test_graphs.ml: Alcotest Array Bitvec Graphs Hashtbl Helpers List Printf QCheck Random
