test/test_integration.ml: Alcotest Array Baseline Bitvec Core Format Helpers Ir List Printf String Workload
