test/test_gmod.ml: Alcotest Array Baseline Bitvec Callgraph Core Graphs Helpers Ir List Printf Workload
