(* Workload generator tests: every generated program is valid IR,
   respects its shape parameters, keeps everything reachable, and
   survives the full front end. *)

let arb_params =
  let gen =
    QCheck.Gen.(
      let* seed = 0 -- 100_000 in
      let* n = 1 -- 80 in
      let* depth = 1 -- 5 in
      let* formals = 0 -- 7 in
      let* density = float_bound_inclusive 1.0 in
      let* recursion = float_bound_inclusive 1.0 in
      return (seed, n, depth, formals, density, recursion))
  in
  QCheck.make gen ~print:(fun (s, n, d, f, bd, r) ->
      Printf.sprintf "seed=%d n=%d depth=%d formals=%d density=%.2f rec=%.2f" s n d f
        bd r)

let gen_of (seed, n, depth, formals, density, recursion) =
  let rng = Random.State.make [| seed |] in
  Workload.Gen.generate rng
    {
      Workload.Gen.default with
      Workload.Gen.n_procs = n;
      max_formals = formals;
      binding_density = density;
      recursion;
      max_depth = depth;
    }

let prop_valid params = Ir.Validate.run (gen_of params) = Ok ()

let prop_shape params =
  let _, n, depth, formals, _, _ = params in
  let p = gen_of params in
  Ir.Prog.n_procs p = n + 1
  && Ir.Prog.max_level p <= depth
  && Array.for_all
       (fun (pr : Ir.Prog.proc) -> Array.length pr.Ir.Prog.formals <= formals)
       p.Ir.Prog.procs

let prop_reachable params =
  let p = gen_of params in
  let c = Callgraph.Call.build p in
  Bitvec.cardinal (Callgraph.Call.reachable_from_main c) = Ir.Prog.n_procs p

let prop_compiles params =
  let p = gen_of params in
  let src = Ir.Pp.to_string p in
  match Frontend.Sema.compile ~file:"w" src with
  | Ok p2 -> Ir.Validate.run p2 = Ok ()
  | Error _ -> false

let prop_deterministic params =
  let a = gen_of params and b = gen_of params in
  String.equal (Ir.Pp.to_string a) (Ir.Pp.to_string b)

let test_families_expectations () =
  let chain = Workload.Families.ref_chain 7 in
  Alcotest.(check int) "chain procs" 8 (Ir.Prog.n_procs chain);
  Alcotest.(check int) "chain sites" 7 (Ir.Prog.n_sites chain);
  let cyc = Workload.Families.ref_cycle 5 in
  let c = Callgraph.Call.build cyc in
  let scc = Graphs.Scc.compute c.Callgraph.Call.graph in
  (* main is its own component; the 5 procedures share one. *)
  Alcotest.(check int) "cycle SCCs" 2 scc.Graphs.Scc.n_comps;
  Ir.Validate.check_exn (Workload.Families.nested_textbook ());
  Ir.Validate.check_exn (Workload.Families.diamond ())

let test_arrays_family () =
  for seed = 0 to 10 do
    let p = Workload.Arrays.generate ~seed ~n_kernels:6 in
    Ir.Validate.check_exn p;
    Alcotest.(check bool) "flat" true (Sections.Analyze_sections.applicable p)
  done

let () =
  Helpers.run "workload"
    [
      ( "generator",
        [
          Helpers.qtest ~count:80 "always valid IR" arb_params prop_valid;
          Helpers.qtest ~count:80 "respects shape parameters" arb_params prop_shape;
          Helpers.qtest ~count:80 "everything reachable" arb_params prop_reachable;
          Helpers.qtest ~count:40 "prints and recompiles" arb_params prop_compiles;
          Helpers.qtest ~count:40 "deterministic in the seed" arb_params
            prop_deterministic;
        ] );
      ( "families",
        [
          Alcotest.test_case "fixed families" `Quick test_families_expectations;
          Alcotest.test_case "array kernels" `Quick test_arrays_family;
        ] );
    ]
