(* Interprocedural constant propagation tests: jump functions, the
   Figure-1-style solve over the formal dependency graph, foldability,
   and the dynamic entry-value oracle. *)

let analyze prog =
  let p = Helpers.pipeline prog in
  Ipcp.analyze p.Helpers.info ~imod_plus:p.Helpers.imod_plus

let const_of prog r qname = Ipcp.constant r (Helpers.var_id prog qname)

let test_literal () =
  let prog =
    Helpers.compile
      {|program m;
procedure f(k : int);
begin
  write k;
end;
begin
  call f(7);
  call f(3 + 4);
end.|}
  in
  let r = analyze prog in
  Alcotest.(check (option int)) "folded literal args agree" (Some 7)
    (const_of prog r "f.k")

let test_disagreeing_sites () =
  let prog =
    Helpers.compile
      {|program m;
procedure f(k : int);
begin
  write k;
end;
begin
  call f(7);
  call f(8);
end.|}
  in
  Alcotest.(check (option int)) "two values -> top" None
    (const_of prog (analyze prog) "f.k")

let test_pass_through_chain () =
  let prog =
    Helpers.compile
      {|program m;
procedure c(z : int);
begin
  write z;
end;
procedure b(y : int);
begin
  call c(y - 2);
end;
procedure a(x : int);
begin
  call b(x + 1);
end;
begin
  call a(10);
end.|}
  in
  let r = analyze prog in
  Alcotest.(check (option int)) "a.x" (Some 10) (const_of prog r "a.x");
  Alcotest.(check (option int)) "b.y = x+1" (Some 11) (const_of prog r "b.y");
  Alcotest.(check (option int)) "c.z = y-2" (Some 9) (const_of prog r "c.z")

let test_recursive_cycle () =
  (* f passes its own parameter around a cycle unchanged: consistent
     constant.  g shifts it: must go to top. *)
  let prog =
    Helpers.compile
      {|program m;
var gv : int;
procedure f(k : int);
begin
  if gv < 10 then
    call f(k);
  end;
end;
procedure g(k : int);
begin
  if gv < 10 then
    call g(k + 1);
  end;
end;
begin
  call f(5);
  call g(5);
end.|}
  in
  let r = analyze prog in
  Alcotest.(check (option int)) "stable cycle keeps constant" (Some 5)
    (const_of prog r "f.k");
  Alcotest.(check (option int)) "shifting cycle -> top" None (const_of prog r "g.k")

let test_modified_param_not_source () =
  (* The caller reassigns its parameter, so passing it on is opaque. *)
  let prog =
    Helpers.compile
      {|program m;
procedure inner(k : int);
begin
  write k;
end;
procedure outer(x : int);
begin
  x := x + 1;
  call inner(x);
end;
begin
  call outer(5);
end.|}
  in
  let r = analyze prog in
  Alcotest.(check (option int)) "outer.x still constant at entry" (Some 5)
    (const_of prog r "outer.x");
  Alcotest.(check (option int)) "inner.k unknown" None (const_of prog r "inner.k");
  (* and outer.x is not foldable (it is modified). *)
  Alcotest.(check bool) "not foldable" false
    (Bitvec.get r.Ipcp.foldable (Helpers.var_id prog "outer.x"))

let test_by_ref_not_source () =
  (* A by-ref formal may change through an alias; passing it on is
     opaque even if the owner never writes it. *)
  let prog =
    Helpers.compile
      {|program m;
var g : int;
procedure sink(k : int);
begin
  write k;
end;
procedure mid(var r : int);
begin
  call bump();
  call sink(r);
end;
procedure bump();
begin
  g := g + 1;
end;
begin
  call mid(g);
end.|}
  in
  let r = analyze prog in
  Alcotest.(check (option int)) "sink.k unknown" None (const_of prog r "sink.k")

let test_immutable_global_is_zero () =
  let prog =
    Helpers.compile
      {|program m;
var never_written : int;
procedure f(k : int);
begin
  write k;
end;
begin
  call f(never_written);
end.|}
  in
  Alcotest.(check (option int)) "initial value 0" (Some 0)
    (const_of prog (analyze prog) "f.k")

let test_by_ref_binding_constant () =
  (* The constant flows INTO a by-ref formal's entry value — the callee
     must not write it, or the global stops being immutable. *)
  let prog =
    Helpers.compile
      {|program m;
var never : int;
procedure f(var r : int);
begin
  write r;
end;
begin
  call f(never);
end.|}
  in
  let r = analyze prog in
  Alcotest.(check (option int)) "entry value of r" (Some 0) (const_of prog r "f.r");
  Alcotest.(check bool) "and foldable (unmodified)" true
    (Bitvec.get r.Ipcp.foldable (Helpers.var_id prog "f.r"))

(* --- dynamic oracle --- *)

let prop_ipcp_sound_flat seed =
  let prog = Helpers.flat_of_seed seed in
  let p = Helpers.pipeline prog in
  let r = Ipcp.analyze p.Helpers.info ~imod_plus:p.Helpers.imod_plus in
  let o = Interp.run ~fuel:10_000 ~max_depth:256 prog in
  let ok = ref true in
  Ir.Prog.iter_vars prog (fun v ->
      match (Ipcp.constant r v.Ir.Prog.vid, o.Interp.formal_entry.(v.Ir.Prog.vid)) with
      | Some c, Interp.Always d -> if c <> d then ok := false
      | Some _, Interp.Varies -> ok := false
      | (Some _ | None), (Interp.Never | Interp.Always _ | Interp.Varies) -> ());
  !ok

let prop_ipcp_sound_nested seed =
  let prog = Helpers.nested_of_seed seed in
  let p = Helpers.pipeline prog in
  let r = Ipcp.analyze p.Helpers.info ~imod_plus:p.Helpers.imod_plus in
  let o = Interp.run ~fuel:10_000 ~max_depth:256 prog in
  let ok = ref true in
  Ir.Prog.iter_vars prog (fun v ->
      match (Ipcp.constant r v.Ir.Prog.vid, o.Interp.formal_entry.(v.Ir.Prog.vid)) with
      | Some c, Interp.Always d -> if c <> d then ok := false
      | Some _, Interp.Varies -> ok := false
      | (Some _ | None), (Interp.Never | Interp.Always _ | Interp.Varies) -> ());
  !ok

let prop_meets_linear seed =
  (* The solve performs O(contributions) meets — at most a small
     multiple of the total argument count (height-2 lattice). *)
  let prog = Helpers.flat_of_seed seed in
  let p = Helpers.pipeline prog in
  let r = Ipcp.analyze p.Helpers.info ~imod_plus:p.Helpers.imod_plus in
  let total_args =
    Array.fold_left
      (fun acc (s : Ir.Prog.site) -> acc + Array.length s.Ir.Prog.args)
      0 prog.Ir.Prog.sites
  in
  r.Ipcp.meets <= (3 * total_args) + 3

let () =
  Helpers.run "ipcp"
    [
      ( "jump functions",
        [
          Alcotest.test_case "literal arguments" `Quick test_literal;
          Alcotest.test_case "disagreeing sites" `Quick test_disagreeing_sites;
          Alcotest.test_case "pass-through chain with offsets" `Quick
            test_pass_through_chain;
          Alcotest.test_case "recursive cycles" `Quick test_recursive_cycle;
          Alcotest.test_case "modified parameter is opaque" `Quick
            test_modified_param_not_source;
          Alcotest.test_case "by-ref formal is opaque" `Quick test_by_ref_not_source;
          Alcotest.test_case "immutable global is its initial 0" `Quick
            test_immutable_global_is_zero;
          Alcotest.test_case "constant into by-ref entry" `Quick
            test_by_ref_binding_constant;
        ] );
      ( "oracle",
        [
          Helpers.qtest ~count:80 "sound vs interpreter (flat)" Helpers.arb_flat_prog
            prop_ipcp_sound_flat;
          Helpers.qtest ~count:80 "sound vs interpreter (nested)"
            Helpers.arb_nested_prog prop_ipcp_sound_nested;
          Helpers.qtest ~count:60 "meet count linear" Helpers.arb_flat_prog
            prop_meets_linear;
        ] );
    ]
