(* Cross-cutting property tests: chain inclusions of the decomposition,
   agreement between independent implementations at larger sizes, and
   soundness bounds. *)

let prop_chain_inclusions seed =
  (* IMOD ⊆ IMOD+ ⊆ GMOD for every procedure. *)
  let prog = Helpers.nested_of_seed seed in
  let t = Core.Analyze.run prog in
  Array.length t.Core.Analyze.imod = Array.length t.Core.Analyze.gmod
  && Array.for_all2 Bitvec.subset t.Core.Analyze.imod t.Core.Analyze.imod_plus
  && Array.for_all2 Bitvec.subset t.Core.Analyze.imod_plus t.Core.Analyze.gmod

let prop_gmod_upper_bound seed =
  (* GMOD(p) ⊆ union of IMOD+ over procedures reachable from p. *)
  let prog = Helpers.flat_of_seed seed in
  let t = Core.Analyze.run prog in
  let g = t.Core.Analyze.call.Callgraph.Call.graph in
  let ok = ref true in
  for pid = 0 to Ir.Prog.n_procs prog - 1 do
    let bound = Ir.Info.fresh t.Core.Analyze.info in
    Bitvec.iter
      (fun q -> ignore (Bitvec.union_into ~src:t.Core.Analyze.imod_plus.(q) ~dst:bound))
      (Graphs.Reach.from g pid);
    if not (Bitvec.subset t.Core.Analyze.gmod.(pid) bound) then ok := false
  done;
  !ok

let prop_unreachable_isolated seed =
  (* A procedure with no path to another cannot see its effects:
     GMOD(p) over globals ⊆ globals modified in reachable procs. *)
  let prog = Helpers.flat_of_seed seed in
  let t = Core.Analyze.run prog in
  let g = t.Core.Analyze.call.Callgraph.Call.graph in
  let global = Ir.Info.global t.Core.Analyze.info in
  let ok = ref true in
  for pid = 0 to Ir.Prog.n_procs prog - 1 do
    let reachable = Graphs.Reach.from g pid in
    let bound = Ir.Info.fresh t.Core.Analyze.info in
    Bitvec.iter
      (fun q ->
        let contrib = Bitvec.inter t.Core.Analyze.imod_plus.(q) global in
        ignore (Bitvec.union_into ~src:contrib ~dst:bound))
      reachable;
    let gmod_globals = Bitvec.inter t.Core.Analyze.gmod.(pid) global in
    if not (Bitvec.subset gmod_globals bound) then ok := false
  done;
  !ok

let prop_force_flat_agrees_on_flat seed =
  let prog = Helpers.flat_of_seed seed in
  let a = Core.Analyze.run prog in
  let b = Core.Analyze.run ~force_flat:true prog in
  Helpers.gmod_arrays_equal a.Core.Analyze.gmod b.Core.Analyze.gmod

let big_trio seed =
  (* The central equivalence at a size where bugs in the linear-time
     bookkeeping would surface. *)
  let prog = Helpers.flat_of_seed ~n:400 seed in
  let p = Helpers.pipeline prog in
  let fig2 = Core.Gmod.solve p.Helpers.info p.Helpers.call ~imod_plus:p.Helpers.imod_plus in
  let iter =
    Baseline.Iterative.gmod p.Helpers.info p.Helpers.call
      ~imod_plus:p.Helpers.imod_plus
  in
  let reach =
    Baseline.Reach.gmod p.Helpers.info p.Helpers.call ~imod_plus:p.Helpers.imod_plus
  in
  Helpers.gmod_arrays_equal fig2 iter && Helpers.gmod_arrays_equal fig2 reach

let big_nested_trio seed =
  let prog = Helpers.nested_of_seed ~n:300 ~depth:5 seed in
  let p = Helpers.pipeline prog in
  let one_pass =
    Core.Gmod_nested.solve p.Helpers.info p.Helpers.call ~imod_plus:p.Helpers.imod_plus
  in
  let by_levels =
    Core.Gmod_nested.solve_by_levels p.Helpers.info p.Helpers.call
      ~imod_plus:p.Helpers.imod_plus
  in
  let iter =
    Baseline.Iterative.gmod p.Helpers.info p.Helpers.call
      ~imod_plus:p.Helpers.imod_plus
  in
  Helpers.gmod_arrays_equal one_pass iter && Helpers.gmod_arrays_equal by_levels iter

let prop_gmod_pass_count_bounded seed =
  (* The naive solver sweeps edges in site order, so its pass count is
     bounded by the longest information path plus the detection sweep —
     at most N + 1; equation (4) being rapid, it is usually tiny, but
     an unluckily oriented chain can need O(N). *)
  let prog = Helpers.flat_of_seed seed in
  let p = Helpers.pipeline prog in
  let _, passes =
    Baseline.Iterative.gmod_passes p.Helpers.info p.Helpers.call
      ~imod_plus:p.Helpers.imod_plus
  in
  passes <= Ir.Prog.n_procs prog + 1

let () =
  Helpers.run "props"
    [
      ( "decomposition",
        [
          Helpers.qtest "IMOD ⊆ IMOD+ ⊆ GMOD" Helpers.arb_nested_prog
            prop_chain_inclusions;
          Helpers.qtest "GMOD bounded by reachable IMOD+" Helpers.arb_flat_prog
            prop_gmod_upper_bound;
          Helpers.qtest "global effects come from reachable procs"
            Helpers.arb_flat_prog prop_unreachable_isolated;
          Helpers.qtest "force_flat identical on flat programs" Helpers.arb_flat_prog
            prop_force_flat_agrees_on_flat;
        ] );
      ( "stress",
        [
          Helpers.qtest ~count:15 "400-proc flat trio" Helpers.arb_flat_prog big_trio;
          Helpers.qtest ~count:15 "300-proc nested trio" Helpers.arb_nested_prog
            big_nested_trio;
          Helpers.qtest ~count:50 "iterative pass count bounded" Helpers.arb_flat_prog
            prop_gmod_pass_count_bounded;
        ] );
    ]
