(* Local analysis tests: LMOD/LUSE per statement kind, IMOD/IUSE, and
   the §3.3 nesting extension. *)

let compile = Helpers.compile

let check_ids prog msg expected actual =
  Alcotest.(check (list int)) msg
    (List.sort_uniq compare (List.map (Helpers.var_id prog) expected))
    actual

let sample =
  compile
    {|program m;
var g, h : int;
var a : array[4, 4] of int;
procedure f(var x : int; y : int);
begin
  x := y;
end;
begin
  g := h + 1;
  a[g, h] := 2;
  if g < h then
    skip;
  end;
  while g > 0 do
    skip;
  end;
  for g := 1 to h do
    skip;
  end;
  read h;
  write g + h;
  call f(a[g, 1], h + g);
end.|}

let main_stmt i = List.nth (Ir.Prog.proc sample sample.Ir.Prog.main).Ir.Prog.body i
let lmod i = Frontend.Local.lmod_stmt sample (main_stmt i)
let luse i = Frontend.Local.luse_stmt sample (main_stmt i)

let test_lmod () =
  check_ids sample "assign" [ "g" ] (lmod 0);
  check_ids sample "array element assign mods whole array" [ "a" ] (lmod 1);
  check_ids sample "if itself mods nothing" [] (lmod 2);
  check_ids sample "while" [] (lmod 3);
  check_ids sample "for mods loop var" [ "g" ] (lmod 4);
  check_ids sample "read" [ "h" ] (lmod 5);
  check_ids sample "write" [] (lmod 6);
  check_ids sample "call has empty LMOD" [] (lmod 7)

let test_luse () =
  check_ids sample "assign rhs" [ "h" ] (luse 0);
  check_ids sample "array assign uses subscripts and rhs vars" [ "g"; "h" ] (luse 1);
  check_ids sample "if condition" [ "g"; "h" ] (luse 2);
  check_ids sample "while condition" [ "g" ] (luse 3);
  check_ids sample "for uses bounds and loop var" [ "g"; "h" ] (luse 4);
  check_ids sample "read uses nothing (scalar target)" [] (luse 5);
  check_ids sample "write" [ "g"; "h" ] (luse 6);
  (* call: value arg h + g evaluated, ref arg a[g, 1] subscript g. *)
  check_ids sample "call argument evaluation" [ "g"; "h" ] (luse 7)

let test_imod_flat () =
  let info = Ir.Info.make sample in
  let im = Frontend.Local.imod_flat info in
  Helpers.check_var_set sample "main IMOD" [ "g"; "h"; "a" ]
    im.(sample.Ir.Prog.main);
  Helpers.check_var_set sample "f IMOD" [ "f.x" ] im.(Helpers.proc_id sample "f")

let nested =
  compile
    {|program m;
var g : int;
procedure outer(var p : int);
var v, w : int;
  procedure mid();
  var t : int;
    procedure deep();
    begin
      v := 1;
      g := 2;
      t := 3;
    end;
  begin
    call deep();
    w := 4;
  end;
begin
  call mid();
end;
begin
  call outer(g);
end.|}

let test_nesting_extension () =
  let info = Ir.Info.make nested in
  let flat = Frontend.Local.imod_flat info in
  let ext = Frontend.Local.imod info in
  let pid = Helpers.proc_id nested in
  (* deep modifies v (outer's), g (global), t (mid's). *)
  Helpers.check_var_set nested "deep flat" [ "outer.v"; "g"; "mid.t" ] flat.(pid "deep");
  (* mid flat: only w?  mid's own body writes w. *)
  Helpers.check_var_set nested "mid flat" [ "outer.w" ] flat.(pid "mid");
  (* extension: mid inherits everything deep modifies that is not
     deep's own — v, g, and mid's own t (t is non-local to deep). *)
  Helpers.check_var_set nested "mid extended"
    [ "outer.v"; "outer.w"; "g"; "mid.t" ]
    ext.(pid "mid");
  (* outer inherits v, w, g but they are partly its own locals: the
     extension keeps v and w since they're outer's locals modified by
     nested procs (non-local to mid). *)
  Helpers.check_var_set nested "outer extended" [ "outer.v"; "outer.w"; "g" ]
    ext.(pid "outer");
  (* main: everything non-local to outer = just g. *)
  Helpers.check_var_set nested "main extended" [ "g" ] ext.(nested.Ir.Prog.main)

let prop_extension_monotone seed =
  let prog = Helpers.nested_of_seed seed in
  let info = Ir.Info.make prog in
  let flat = Frontend.Local.imod_flat info in
  let ext = Frontend.Local.imod info in
  Array.for_all2 (fun f e -> Bitvec.subset f e) flat ext

let prop_extension_only_adds_nonlocal seed =
  let prog = Helpers.nested_of_seed seed in
  let info = Ir.Info.make prog in
  let flat = Frontend.Local.imod_flat info in
  let ext = Frontend.Local.imod info in
  let ok = ref true in
  Array.iteri
    (fun pid e ->
      let added = Bitvec.diff e flat.(pid) in
      (* Everything added comes from a nested procedure and is not
         local to that procedure; in particular it is visible in pid
         (its owner is pid or one of pid's ancestors) or global. *)
      Bitvec.iter
        (fun vid ->
          if not (Ir.Prog.visible prog ~proc:pid ~var:vid) then ok := false)
        added)
    ext;
  !ok

let () =
  Helpers.run "local"
    [
      ( "per-statement",
        [
          Alcotest.test_case "LMOD by statement kind" `Quick test_lmod;
          Alcotest.test_case "LUSE by statement kind" `Quick test_luse;
        ] );
      ( "per-procedure",
        [
          Alcotest.test_case "flat IMOD" `Quick test_imod_flat;
          Alcotest.test_case "nesting extension" `Quick test_nesting_extension;
          Helpers.qtest ~count:60 "extension is monotone" Helpers.arb_nested_prog
            prop_extension_monotone;
          Helpers.qtest ~count:60 "extension adds only visible vars"
            Helpers.arb_nested_prog prop_extension_only_adds_nonlocal;
        ] );
    ]
