(* Validator coverage: corrupt well-formed programs in every way
   Validate.run checks for, and assert the specific diagnostic.  The
   validator guards every generator and transformation, so its own
   checks deserve direct tests. *)

module Prog = Ir.Prog

let base =
  Helpers.compile
    {|program m;
var g : int;
var a : array[3, 3] of int;
procedure f(var x : int; y : int);
var t : int;
begin
  t := y;
  x := t + g;
  a[1, 2] := x;
end;
begin
  call f(g, 4);
end.|}

let expect_error mutate fragment =
  let prog = mutate base in
  match Ir.Validate.run prog with
  | Ok () -> Alcotest.failf "corruption accepted (wanted %S)" fragment
  | Error errs ->
    let contains s sub =
      let n = String.length s and m = String.length sub in
      let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
      go 0
    in
    if
      not
        (List.exists (fun e -> contains e.Ir.Validate.what fragment) errs)
    then
      Alcotest.failf "diagnostics %a lack %S"
        Fmt.(Dump.list (Fmt.of_to_string (fun e -> e.Ir.Validate.what)))
        errs fragment

let with_vars f prog = { prog with Prog.vars = f prog.Prog.vars }
let with_procs f prog = { prog with Prog.procs = f prog.Prog.procs }
let with_sites f prog = { prog with Prog.sites = f prog.Prog.sites }

let test_accepts_base () = Ir.Validate.check_exn base

let test_vid_mismatch () =
  expect_error
    (with_vars (fun vars ->
         let v = Array.copy vars in
         v.(0) <- { v.(0) with Prog.vid = 5 };
         v))
    "vid 5 at index 0"

let test_pid_mismatch () =
  expect_error
    (with_procs (fun procs ->
         let p = Array.copy procs in
         p.(1) <- { p.(1) with Prog.pid = 0 };
         p))
    "pid 0 at index 1"

let test_level_inconsistent () =
  expect_error
    (with_procs (fun procs ->
         let p = Array.copy procs in
         p.(1) <- { p.(1) with Prog.level = 7 };
         p))
    "level 7 but parent level 0"

let test_nested_list_broken () =
  expect_error
    (with_procs (fun procs ->
         let p = Array.copy procs in
         p.(0) <- { p.(0) with Prog.nested = [] };
         p))
    "missing from parent's nested list"

let test_local_table_broken () =
  expect_error
    (with_procs (fun procs ->
         let p = Array.copy procs in
         p.(1) <- { p.(1) with Prog.locals = [] };
         p))
    "local missing from"

let test_arity_mismatch () =
  expect_error
    (with_sites (fun sites ->
         let s = Array.copy sites in
         s.(0) <- { s.(0) with Prog.args = [| s.(0).Prog.args.(0) |] };
         s))
    "passes 1 args"

let test_mode_mismatch () =
  expect_error
    (with_sites (fun sites ->
         let s = Array.copy sites in
         let args = Array.copy s.(0).Prog.args in
         args.(0) <- Prog.Arg_value (Ir.Expr.Int 1);
         s.(0) <- { s.(0) with Prog.args };
         s))
    "value actual for ref formal"

let test_caller_wrong () =
  expect_error
    (with_sites (fun sites ->
         let s = Array.copy sites in
         s.(0) <- { s.(0) with Prog.caller = 1 };
         s))
    "records caller"

let test_dangling_site () =
  expect_error
    (with_sites (fun sites ->
         Array.append sites
           [| { Prog.sid = Array.length sites; caller = 0; callee = 1;
                args = [| Prog.Arg_ref (Ir.Expr.Lvar 0); Prog.Arg_value (Ir.Expr.Int 1) |] } |]))
    "has no call statement"

let test_visibility_violation () =
  (* Make f's body reference main's view of... inject a use of f's
     local t from main's body. *)
  let t_vid = Helpers.var_id base "f.t" in
  expect_error
    (with_procs (fun procs ->
         let p = Array.copy procs in
         p.(0) <-
           { p.(0) with
             Prog.body = Ir.Stmt.Write (Ir.Expr.Var t_vid) :: p.(0).Prog.body };
         p))
    "not visible here"

let test_rank_violation () =
  let a_vid = Helpers.var_id base "a" in
  expect_error
    (with_procs (fun procs ->
         let p = Array.copy procs in
         p.(0) <-
           { p.(0) with
             Prog.body =
               Ir.Stmt.Assign (Ir.Expr.Lindex (a_vid, [ Ir.Expr.Int 1 ]), Ir.Expr.Int 0)
               :: p.(0).Prog.body };
         p))
    "indexed with 1 subscripts, rank 2"

let () =
  Helpers.run "validate"
    [
      ( "corruptions",
        [
          Alcotest.test_case "base accepted" `Quick test_accepts_base;
          Alcotest.test_case "vid mismatch" `Quick test_vid_mismatch;
          Alcotest.test_case "pid mismatch" `Quick test_pid_mismatch;
          Alcotest.test_case "level inconsistent" `Quick test_level_inconsistent;
          Alcotest.test_case "nested list broken" `Quick test_nested_list_broken;
          Alcotest.test_case "locals table broken" `Quick test_local_table_broken;
          Alcotest.test_case "arity mismatch" `Quick test_arity_mismatch;
          Alcotest.test_case "mode mismatch" `Quick test_mode_mismatch;
          Alcotest.test_case "caller mismatch" `Quick test_caller_wrong;
          Alcotest.test_case "dangling site" `Quick test_dangling_site;
          Alcotest.test_case "visibility violation" `Quick test_visibility_violation;
          Alcotest.test_case "rank violation" `Quick test_rank_violation;
        ] );
    ]
