(* Alias-pair analysis tests (§5's assumed input): introduction rules,
   propagation down call chains, and the closure operation. *)

let compile = Helpers.compile

let pairs_named prog t pid =
  List.map
    (fun (x, y) ->
      ((Ir.Prog.var prog x).Ir.Prog.vname, (Ir.Prog.var prog y).Ir.Prog.vname))
    (Core.Alias.pairs t pid)

let test_same_actual_twice () =
  let prog =
    compile
      {|program m;
var g : int;
procedure f(var x : int; var y : int);
begin
  x := 1;
end;
begin
  call f(g, g);
end.|}
  in
  let t = Core.Alias.compute (Ir.Info.make prog) in
  let f = Helpers.proc_id prog "f" in
  Alcotest.(check bool) "x~y" true
    (Core.Alias.may_alias t ~proc:f (Helpers.var_id prog "f.x")
       (Helpers.var_id prog "f.y"));
  (* g visible in f, so both formals alias g as well. *)
  Alcotest.(check int) "three pairs" 3 (List.length (Core.Alias.pairs t f))

let test_global_passed_by_ref () =
  let prog =
    compile
      {|program m;
var g, h : int;
procedure f(var x : int);
begin
  x := 1;
end;
begin
  call f(g);
end.|}
  in
  let t = Core.Alias.compute (Ir.Info.make prog) in
  let f = Helpers.proc_id prog "f" in
  Alcotest.(check (list (pair string string))) "only <g, x>" [ ("g", "x") ]
    (pairs_named prog t f)

let test_local_passed_no_alias () =
  (* A caller's local passed by ref is invisible in the callee: no
     introduced pair. *)
  let prog =
    compile
      {|program m;
procedure f(var x : int);
begin
  x := 1;
end;
procedure caller();
var l : int;
begin
  call f(l);
end;
begin
  call caller();
end.|}
  in
  let t = Core.Alias.compute (Ir.Info.make prog) in
  Alcotest.(check int) "no pairs" 0 (Core.Alias.total_pairs t)

let test_propagation_chain () =
  (* <x, y> in f propagates to <a, b> in g when both are passed on. *)
  let prog =
    compile
      {|program m;
var g0 : int;
procedure inner(var a : int; var b : int);
begin
  a := 1;
end;
procedure f(var x : int; var y : int);
begin
  call inner(x, y);
end;
begin
  call f(g0, g0);
end.|}
  in
  let t = Core.Alias.compute (Ir.Info.make prog) in
  let inner = Helpers.proc_id prog "inner" in
  Alcotest.(check bool) "a~b propagated" true
    (Core.Alias.may_alias t ~proc:inner
       (Helpers.var_id prog "inner.a")
       (Helpers.var_id prog "inner.b"))

let test_propagation_formal_global () =
  (* <x, g> in f propagates as <a, g> when x is passed and g is
     visible. *)
  let prog =
    compile
      {|program m;
var g : int;
procedure inner(var a : int);
begin
  a := 1;
end;
procedure f(var x : int);
begin
  call inner(x);
end;
begin
  call f(g);
end.|}
  in
  let t = Core.Alias.compute (Ir.Info.make prog) in
  let inner = Helpers.proc_id prog "inner" in
  Alcotest.(check bool) "a~g" true
    (Core.Alias.may_alias t ~proc:inner
       (Helpers.var_id prog "inner.a")
       (Helpers.var_id prog "g"))

let test_recursive_fixpoint () =
  (* Aliases through a recursive cycle terminate and stay correct. *)
  let prog =
    compile
      {|program m;
var g : int;
procedure r(var x : int; var y : int);
begin
  call r(y, x);
  x := 1;
end;
begin
  call r(g, g);
end.|}
  in
  let t = Core.Alias.compute (Ir.Info.make prog) in
  let r = Helpers.proc_id prog "r" in
  Alcotest.(check bool) "x~y" true
    (Core.Alias.may_alias t ~proc:r (Helpers.var_id prog "r.x")
       (Helpers.var_id prog "r.y"))

let test_nesting_inheritance () =
  (* Regression (found by differential testing): a pair holding on
     entry to p must hold inside procedures nested in p — here nested's
     call passes a2 (aliased to g via main's call) and the alias must
     be visible at that site. *)
  let prog =
    compile
      {|program m;
var g : int;
procedure sink(var s : int);
begin
  s := 1;
end;
procedure p(var a2 : int);
  procedure nested();
  begin
    call sink(a2);
  end;
begin
  call nested();
end;
begin
  call p(g);
end.|}
  in
  let info = Ir.Info.make prog in
  let t = Core.Alias.compute info in
  let nested = Helpers.proc_id prog "nested" in
  Alcotest.(check bool) "nested inherits <a2, g>" true
    (Core.Alias.may_alias t ~proc:nested (Helpers.var_id prog "p.a2")
       (Helpers.var_id prog "g"));
  (* And the site-level MOD inside nested therefore includes g. *)
  let full = Core.Analyze.run prog in
  let sid = (List.hd (Ir.Prog.sites_of prog nested)).Ir.Prog.sid in
  Helpers.check_var_set prog "MOD(sink(a2)) closes over g" [ "g"; "p.a2" ]
    (Core.Analyze.mod_of_site full sid)

let test_close () =
  let prog =
    compile
      {|program m;
var g : int;
procedure f(var x : int);
begin
  x := 1;
end;
begin
  call f(g);
end.|}
  in
  let info = Ir.Info.make prog in
  let t = Core.Alias.compute info in
  let f = Helpers.proc_id prog "f" in
  let set = Bitvec.create (Ir.Prog.n_vars prog) in
  Bitvec.set set (Helpers.var_id prog "f.x");
  let closed = Core.Alias.close t ~proc:f set in
  Helpers.check_var_set prog "closure adds g" [ "g"; "f.x" ] closed

let prop_pairs_are_visible_pairs seed =
  (* Every pair of ALIAS(p) relates variables visible in p. *)
  let prog = Helpers.nested_of_seed seed in
  let t = Core.Alias.compute (Ir.Info.make prog) in
  let ok = ref true in
  for pid = 0 to Ir.Prog.n_procs prog - 1 do
    List.iter
      (fun (x, y) ->
        if
          not
            (Ir.Prog.visible prog ~proc:pid ~var:x
            && Ir.Prog.visible prog ~proc:pid ~var:y)
        then ok := false)
      (Core.Alias.pairs t pid)
  done;
  !ok

let prop_close_superset seed =
  let prog = Helpers.flat_of_seed seed in
  let info = Ir.Info.make prog in
  let t = Core.Alias.compute info in
  let set = Ir.Info.global info in
  let ok = ref true in
  for pid = 0 to Ir.Prog.n_procs prog - 1 do
    if not (Bitvec.subset set (Core.Alias.close t ~proc:pid set)) then ok := false
  done;
  !ok

let () =
  Helpers.run "alias"
    [
      ( "introduction",
        [
          Alcotest.test_case "same actual at two positions" `Quick
            test_same_actual_twice;
          Alcotest.test_case "global passed by reference" `Quick
            test_global_passed_by_ref;
          Alcotest.test_case "invisible local introduces nothing" `Quick
            test_local_passed_no_alias;
        ] );
      ( "propagation",
        [
          Alcotest.test_case "pair through a chain" `Quick test_propagation_chain;
          Alcotest.test_case "formal-global pair through a chain" `Quick
            test_propagation_formal_global;
          Alcotest.test_case "recursive fixpoint" `Quick test_recursive_fixpoint;
          Alcotest.test_case "inheritance down the nesting tree (regression)" `Quick
            test_nesting_inheritance;
        ] );
      ( "closure",
        [
          Alcotest.test_case "one-step closure" `Quick test_close;
          Helpers.qtest ~count:50 "pairs relate visible variables"
            Helpers.arb_nested_prog prop_pairs_are_visible_pairs;
          Helpers.qtest ~count:50 "closure is extensive" Helpers.arb_flat_prog
            prop_close_superset;
        ] );
    ]
