(* Call multi-graph and binding multi-graph construction tests,
   including the §3.3 lexical-scoping rule and §3.1 size relations. *)

let compile = Helpers.compile

let test_call_graph_edges_are_sites () =
  let p =
    compile
      {|program m;
procedure f();
begin
  skip;
end;
procedure g();
begin
  call f();
  call f();
end;
begin
  call g();
  call f();
end.|}
  in
  let c = Callgraph.Call.build p in
  Alcotest.(check int) "edges = sites" (Ir.Prog.n_sites p)
    (Graphs.Digraph.n_edges c.Callgraph.Call.graph);
  Ir.Prog.iter_sites p (fun s ->
      Alcotest.(check int) "edge src = caller" s.Ir.Prog.caller
        (Graphs.Digraph.edge_src c.Callgraph.Call.graph s.Ir.Prog.sid);
      Alcotest.(check int) "edge dst = callee" s.Ir.Prog.callee
        (Graphs.Digraph.edge_dst c.Callgraph.Call.graph s.Ir.Prog.sid))

let test_reachability () =
  let p =
    compile
      {|program m;
procedure unreachable();
begin
  skip;
end;
procedure used();
begin
  skip;
end;
begin
  call used();
end.|}
  in
  let c = Callgraph.Call.build p in
  let r = Callgraph.Call.reachable_from_main c in
  Alcotest.(check bool) "main" true (Bitvec.get r p.Ir.Prog.main);
  Alcotest.(check bool) "used" true (Bitvec.get r (Helpers.proc_id p "used"));
  Alcotest.(check bool) "unreachable" false
    (Bitvec.get r (Helpers.proc_id p "unreachable"))

(* β: one node per by-ref formal, one edge per formal-to-formal binding
   event. *)
let binding_prog =
  compile
    {|program m;
var g : int;
var arr : array[5] of int;
procedure leaf(var z : int);
begin
  z := 1;
end;
procedure mid(var x : int; y : int; var w : array[5] of int);
begin
  call leaf(x);       // edge mid.x -> leaf.z
  call leaf(g);       // no edge: actual is a global
  call leaf(w[y]);    // edge mid.w -> leaf.z, via element
  call leaf(x);       // second edge mid.x -> leaf.z (multi-graph)
end;
begin
  call mid(g, 2, arr);
end.|}

let test_binding_nodes () =
  let b = Callgraph.Binding.build binding_prog in
  (* by-ref formals: leaf.z, mid.x, mid.w (mid.y is by-value). *)
  Alcotest.(check int) "nodes" 3 (Callgraph.Binding.n_nodes b);
  Alcotest.(check bool) "by-value formal not a node" true
    (Callgraph.Binding.node_opt b (Helpers.var_id binding_prog "mid.y") = None);
  Alcotest.(check bool) "global not a node" true
    (Callgraph.Binding.node_opt b (Helpers.var_id binding_prog "g") = None)

let test_binding_edges () =
  let b = Callgraph.Binding.build binding_prog in
  Alcotest.(check int) "three binding events" 3 (Callgraph.Binding.n_edges b);
  let x = Callgraph.Binding.node b (Helpers.var_id binding_prog "mid.x") in
  let w = Callgraph.Binding.node b (Helpers.var_id binding_prog "mid.w") in
  let z = Callgraph.Binding.node b (Helpers.var_id binding_prog "leaf.z") in
  let g = b.Callgraph.Binding.graph in
  let edges = ref [] in
  Graphs.Digraph.iter_edges g (fun e s d -> edges := (e, s, d) :: !edges);
  let from_x = List.filter (fun (_, s, d) -> s = x && d = z) !edges in
  let from_w = List.filter (fun (_, s, d) -> s = w && d = z) !edges in
  Alcotest.(check int) "two events x->z" 2 (List.length from_x);
  Alcotest.(check int) "one event w->z" 1 (List.length from_w);
  (* the w edge is via an array element *)
  List.iter
    (fun (e, _, _) ->
      Alcotest.(check bool) "via_element" true
        b.Callgraph.Binding.edges.(e).Callgraph.Binding.via_element)
    from_w;
  List.iter
    (fun (e, _, _) ->
      Alcotest.(check bool) "whole-var binding" false
        b.Callgraph.Binding.edges.(e).Callgraph.Binding.via_element)
    from_x

let test_scoping_rule () =
  (* §3.3 problem 2: a formal of outer passed at a site inside nested. *)
  let p =
    compile
      {|program m;
var g : int;
procedure target(var t : int);
begin
  t := 1;
end;
procedure outer(var f : int);
  procedure nested();
  begin
    call target(f);
  end;
begin
  call nested();
end;
begin
  call outer(g);
end.|}
  in
  let b = Callgraph.Binding.build p in
  Alcotest.(check int) "one edge" 1 (Callgraph.Binding.n_edges b);
  let f = Callgraph.Binding.node b (Helpers.var_id p "outer.f") in
  let t = Callgraph.Binding.node b (Helpers.var_id p "target.t") in
  Graphs.Digraph.iter_edges b.Callgraph.Binding.graph (fun _ s d ->
      Alcotest.(check int) "src is outer.f" f s;
      Alcotest.(check int) "dst is target.t" t d)

let prop_beta_size_relation seed =
  (* §3.1: E_β ≤ µ_a·E_C and every β node touches a by-ref formal. *)
  let p = Helpers.flat_of_seed seed in
  let b = Callgraph.Binding.build p in
  let mu_a = Callgraph.Binding.mu_a p in
  float_of_int (Callgraph.Binding.n_edges b)
  <= (mu_a *. float_of_int (Ir.Prog.n_sites p)) +. 1e-9

let prop_beta_nodes_are_ref_formals seed =
  let p = Helpers.flat_of_seed seed in
  let b = Callgraph.Binding.build p in
  let ok = ref true in
  for node = 0 to Callgraph.Binding.n_nodes b - 1 do
    if not (Ir.Prog.is_ref_formal (Ir.Prog.var p (Callgraph.Binding.var b node))) then
      ok := false
  done;
  !ok

let prop_generated_all_reachable seed =
  let p = Helpers.nested_of_seed seed in
  let c = Callgraph.Call.build p in
  Bitvec.cardinal (Callgraph.Call.reachable_from_main c) = Ir.Prog.n_procs p

let () =
  Helpers.run "callgraph"
    [
      ( "call graph",
        [
          Alcotest.test_case "edge ids are site ids" `Quick
            test_call_graph_edges_are_sites;
          Alcotest.test_case "reachability from main" `Quick test_reachability;
        ] );
      ( "binding graph",
        [
          Alcotest.test_case "node set" `Quick test_binding_nodes;
          Alcotest.test_case "binding events" `Quick test_binding_edges;
          Alcotest.test_case "formal bound inside nested proc (3.3)" `Quick
            test_scoping_rule;
          Helpers.qtest ~count:60 "E_beta <= mu_a * E_C" Helpers.arb_flat_prog
            prop_beta_size_relation;
          Helpers.qtest ~count:60 "nodes are by-ref formals" Helpers.arb_flat_prog
            prop_beta_nodes_are_ref_formals;
          Helpers.qtest ~count:60 "generator keeps everything reachable"
            Helpers.arb_nested_prog prop_generated_all_reachable;
        ] );
    ]
