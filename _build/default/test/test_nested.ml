(* Multi-level nesting (§4 end): the two multi-level implementations,
   their equivalence with the chaotic-iteration oracle, the reduction
   to plain Figure 2 at dP = 1, and the counterexample showing plain
   Figure 2 is wrong for dP > 1. *)

let solve_all prog =
  let p = Helpers.pipeline prog in
  let oracle =
    Baseline.Iterative.gmod p.Helpers.info p.Helpers.call
      ~imod_plus:p.Helpers.imod_plus
  in
  let plain = Core.Gmod.solve p.Helpers.info p.Helpers.call ~imod_plus:p.Helpers.imod_plus in
  let one_pass =
    Core.Gmod_nested.solve p.Helpers.info p.Helpers.call
      ~imod_plus:p.Helpers.imod_plus
  in
  let by_levels =
    Core.Gmod_nested.solve_by_levels p.Helpers.info p.Helpers.call
      ~imod_plus:p.Helpers.imod_plus
  in
  (p, oracle, plain, one_pass, by_levels)

let test_textbook () =
  let prog = Workload.Families.nested_textbook () in
  let _, oracle, _, one_pass, by_levels = solve_all prog in
  Alcotest.(check bool) "one-pass = oracle" true
    (Helpers.gmod_arrays_equal one_pass oracle);
  Alcotest.(check bool) "by-levels = oracle" true
    (Helpers.gmod_arrays_equal by_levels oracle);
  (* Specific content: v (outer's local) is in GMOD of mid and inner
     but helper only touches its own formal. *)
  Helpers.check_var_set prog "GMOD(inner)"
    [ "g0"; "outer.v"; "inner.r" ]
    oracle.(Helpers.proc_id prog "inner");
  Helpers.check_var_set prog "GMOD(mid)"
    [ "g0"; "outer.v"; "mid.q" ]
    oracle.(Helpers.proc_id prog "mid");
  Helpers.check_var_set prog "GMOD(helper)" [ "helper.h" ]
    oracle.(Helpers.proc_id prog "helper");
  Helpers.check_var_set prog "GMOD(outer)"
    [ "g0"; "outer.v"; "outer.p" ]
    oracle.(Helpers.proc_id prog "outer")

let counterexample_src =
  {|program demo;
var g : int;
procedure outer();
var v : int;
  procedure helper(var x : int);
  begin
    v := v + 1;
    x := 0;
    call outer();
  end;
  procedure walker();
  begin
    call helper(g);
  end;
begin
  call helper(g);
  call walker();
end;
begin
  call outer();
end.|}

let test_plain_figure2_is_wrong_nested () =
  let prog = Helpers.compile counterexample_src in
  let _, oracle, plain, one_pass, by_levels = solve_all prog in
  let walker = Helpers.proc_id prog "walker" in
  Helpers.check_var_set prog "oracle GMOD(walker)" [ "g"; "outer.v" ] oracle.(walker);
  Alcotest.(check bool) "plain misses outer.v" false
    (Bitvec.get plain.(walker) (Helpers.var_id prog "outer.v"));
  Alcotest.(check bool) "one-pass correct" true
    (Helpers.gmod_arrays_equal one_pass oracle);
  Alcotest.(check bool) "by-levels correct" true
    (Helpers.gmod_arrays_equal by_levels oracle)

let prop_flat_reduction seed =
  (* dP = 1: both multi-level variants coincide with plain Figure 2. *)
  let prog = Helpers.flat_of_seed seed in
  let _, _, plain, one_pass, by_levels = solve_all prog in
  Helpers.gmod_arrays_equal plain one_pass
  && Helpers.gmod_arrays_equal plain by_levels

let prop_one_pass_equals_oracle seed =
  let prog = Helpers.nested_of_seed seed in
  let _, oracle, _, one_pass, _ = solve_all prog in
  Helpers.gmod_arrays_equal one_pass oracle

let prop_by_levels_equals_oracle seed =
  let prog = Helpers.nested_of_seed seed in
  let _, oracle, _, _, by_levels = solve_all prog in
  Helpers.gmod_arrays_equal by_levels oracle

let prop_deep_nesting seed =
  (* Deeper nesting, smaller programs: stress dP. *)
  let prog = Helpers.nested_of_seed ~n:25 ~depth:7 seed in
  let _, oracle, _, one_pass, by_levels = solve_all prog in
  Helpers.gmod_arrays_equal one_pass oracle
  && Helpers.gmod_arrays_equal by_levels oracle

let prop_plain_is_subset_on_nested seed =
  (* Plain Figure 2 never overapproximates (its unions are all
     sanctioned by equation (4)); it can only miss. *)
  let prog = Helpers.nested_of_seed seed in
  let _, oracle, plain, _, _ = solve_all prog in
  Array.for_all2 (fun p o -> Bitvec.subset p o) plain oracle

let prop_use_side_nested seed =
  (* The USE chain through the multi-level solver also matches the
     iterative oracle. *)
  let prog = Helpers.nested_of_seed seed in
  let info = Ir.Info.make prog in
  let call = Callgraph.Call.build prog in
  let binding = Callgraph.Binding.build prog in
  let iuse = Frontend.Local.iuse info in
  let ruse = Core.Rmod.solve binding ~imod:iuse in
  let iuse_plus = Core.Imod_plus.compute info ~rmod:ruse ~imod:iuse in
  let oracle = Baseline.Iterative.gmod info call ~imod_plus:iuse_plus in
  let one_pass = Core.Gmod_nested.solve info call ~imod_plus:iuse_plus in
  Helpers.gmod_arrays_equal one_pass oracle

let () =
  Helpers.run "nested"
    [
      ( "fixed cases",
        [
          Alcotest.test_case "textbook nesting" `Quick test_textbook;
          Alcotest.test_case "plain Figure 2 counterexample" `Quick
            test_plain_figure2_is_wrong_nested;
        ] );
      ( "equivalence",
        [
          Helpers.qtest "dP=1 reduces to Figure 2" Helpers.arb_flat_prog
            prop_flat_reduction;
          Helpers.qtest "one-pass = oracle (nested)" Helpers.arb_nested_prog
            prop_one_pass_equals_oracle;
          Helpers.qtest "by-levels = oracle (nested)" Helpers.arb_nested_prog
            prop_by_levels_equals_oracle;
          Helpers.qtest ~count:60 "depth-7 stress" Helpers.arb_nested_prog
            prop_deep_nesting;
          Helpers.qtest "plain is a sound subset" Helpers.arb_nested_prog
            prop_plain_is_subset_on_nested;
          Helpers.qtest ~count:60 "USE side matches oracle" Helpers.arb_nested_prog
            prop_use_side_nested;
        ] );
    ]
