(* IR utility coverage: the navigation and query helpers every analysis
   leans on (ancestry, visibility, lookup, statement folds, types,
   expression utilities). *)

module Prog = Ir.Prog
module Expr = Ir.Expr
module Stmt = Ir.Stmt

let sample =
  Helpers.compile
    {|program m;
var g : int;
var arr : array[2, 3] of int;
procedure outer(var x : int);
var v : int;
  procedure inner(y : int);
  var w : int;
  begin
    w := y + v + g;
    call inner(w);
  end;
begin
  call inner(x);
  v := 1;
end;
procedure other();
begin
  g := 2;
end;
begin
  call outer(g);
  call other();
end.|}

let pid = Helpers.proc_id sample
let vid = Helpers.var_id sample

let test_ancestry () =
  Alcotest.(check (list int)) "ancestors of inner"
    [ pid "inner"; pid "outer"; sample.Prog.main ]
    (Prog.ancestors sample (pid "inner"));
  Alcotest.(check bool) "outer anc inner" true
    (Prog.is_ancestor sample ~anc:(pid "outer") ~desc:(pid "inner"));
  Alcotest.(check bool) "reflexive" true
    (Prog.is_ancestor sample ~anc:(pid "inner") ~desc:(pid "inner"));
  Alcotest.(check bool) "not sideways" false
    (Prog.is_ancestor sample ~anc:(pid "other") ~desc:(pid "inner"));
  Alcotest.(check int) "max level" 2 (Prog.max_level sample)

let test_visibility () =
  Alcotest.(check bool) "global visible in inner" true
    (Prog.visible sample ~proc:(pid "inner") ~var:(vid "g"));
  Alcotest.(check bool) "outer.v visible in inner" true
    (Prog.visible sample ~proc:(pid "inner") ~var:(vid "outer.v"));
  Alcotest.(check bool) "inner.w invisible in outer" false
    (Prog.visible sample ~proc:(pid "outer") ~var:(vid "inner.w"));
  Alcotest.(check bool) "inner.w invisible in other" false
    (Prog.visible sample ~proc:(pid "other") ~var:(vid "inner.w"))

let test_lookup () =
  Alcotest.(check bool) "find_proc hit" true (Prog.find_proc sample "inner" <> None);
  Alcotest.(check bool) "find_proc miss" true (Prog.find_proc sample "nope" = None);
  (* find_var resolves from a scope: w from inner, not visible from
     outer. *)
  Alcotest.(check bool) "find_var inner w" true
    (Prog.find_var sample ~proc:(pid "inner") "w" <> None);
  Alcotest.(check bool) "find_var outer w misses" true
    (Prog.find_var sample ~proc:(pid "outer") "w" = None);
  (match Prog.find_var sample ~proc:(pid "inner") "g" with
  | Some v -> Alcotest.(check bool) "g resolves to the global" true (Prog.is_global v)
  | None -> Alcotest.fail "g not found")

let test_levels () =
  Alcotest.(check int) "global level" 0 (Prog.owner_level sample (Prog.var sample (vid "g")));
  Alcotest.(check int) "outer.v level" 1
    (Prog.owner_level sample (Prog.var sample (vid "outer.v")));
  Alcotest.(check int) "inner.w level" 2
    (Prog.owner_level sample (Prog.var sample (vid "inner.w")))

let test_stmt_folds () =
  let outer = Prog.proc sample (pid "outer") in
  Alcotest.(check int) "outer body statements" 2 (Stmt.count outer.Prog.body);
  Alcotest.(check int) "one call site in outer" 1
    (List.length (Stmt.call_sites outer.Prog.body));
  let inner = Prog.proc sample (pid "inner") in
  Alcotest.(check int) "inner body statements" 2 (Stmt.count inner.Prog.body)

let test_sites_of () =
  let main_sites = Prog.sites_of sample sample.Prog.main in
  Alcotest.(check int) "main has two sites" 2 (List.length main_sites);
  List.iter
    (fun s -> Alcotest.(check int) "caller" sample.Prog.main s.Prog.caller)
    main_sites

let test_expr_utilities () =
  let e =
    Expr.Binop
      (Expr.Add, Expr.Var 3, Expr.Index (7, [ Expr.Var 3; Expr.Var 1 ]))
  in
  Alcotest.(check (list int)) "vars deduped sorted" [ 1; 3; 7 ] (Expr.vars e);
  Alcotest.(check bool) "equal reflexive" true (Expr.equal e e);
  Alcotest.(check bool) "not equal" false (Expr.equal e (Expr.Var 3));
  Alcotest.(check int) "lvalue base" 7 (Expr.lvalue_base (Expr.Lindex (7, [ Expr.Var 1 ])));
  Alcotest.(check (list int)) "lvalue index vars" [ 1 ]
    (Expr.lvalue_index_vars (Expr.Lindex (7, [ Expr.Var 1 ])))

let test_types () =
  Alcotest.(check bool) "int=int" true (Ir.Types.equal Ir.Types.Int Ir.Types.Int);
  Alcotest.(check bool) "array dims" false
    (Ir.Types.equal (Ir.Types.Array [ 2 ]) (Ir.Types.Array [ 3 ]));
  Alcotest.(check int) "rank" 2 (Ir.Types.rank (Ir.Types.Array [ 2; 3 ]));
  Alcotest.(check string) "printed" "array[2, 3] of int"
    (Ir.Types.to_string (Ir.Types.Array [ 2; 3 ]))

let test_info_views () =
  let info = Ir.Info.make sample in
  Alcotest.(check bool) "global set" true (Bitvec.get (Ir.Info.global info) (vid "g"));
  Alcotest.(check bool) "local of outer" true
    (Bitvec.get (Ir.Info.local info (pid "outer")) (vid "outer.v"));
  Alcotest.(check bool) "non_local complement" false
    (Bitvec.get (Ir.Info.non_local info (pid "outer")) (vid "outer.v"));
  Alcotest.(check bool) "visible chain" true
    (Bitvec.get (Ir.Info.visible info (pid "inner")) (vid "outer.v"));
  Alcotest.(check int) "var level" 2 (Ir.Info.var_level info (vid "inner.w"));
  Alcotest.(check bool) "level_at_most 1 excludes level 2" false
    (Bitvec.get (Ir.Info.level_at_most info 1) (vid "inner.w"));
  Alcotest.(check bool) "level_at_most 1 includes globals" true
    (Bitvec.get (Ir.Info.level_at_most info 1) (vid "g"))

let test_dot_export () =
  let call = Callgraph.Call.build sample in
  let binding = Callgraph.Binding.build sample in
  let dot_c = Callgraph.Dot.call_graph call in
  let dot_b = Callgraph.Dot.binding_graph binding in
  let contains s sub =
    let n = String.length s and m = String.length sub in
    let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
    go 0
  in
  List.iter
    (fun frag ->
      Alcotest.(check bool) ("call dot has " ^ frag) true (contains dot_c frag))
    [ "digraph callgraph"; "outer"; "inner"; "level 2"; "->" ];
  List.iter
    (fun frag ->
      Alcotest.(check bool) ("binding dot has " ^ frag) true (contains dot_b frag))
    [ "digraph binding"; "outer.x" ]

let () =
  Helpers.run "ir"
    [
      ( "navigation",
        [
          Alcotest.test_case "ancestry" `Quick test_ancestry;
          Alcotest.test_case "visibility" `Quick test_visibility;
          Alcotest.test_case "lookup" `Quick test_lookup;
          Alcotest.test_case "levels" `Quick test_levels;
          Alcotest.test_case "sites_of" `Quick test_sites_of;
        ] );
      ( "utilities",
        [
          Alcotest.test_case "statement folds" `Quick test_stmt_folds;
          Alcotest.test_case "expression helpers" `Quick test_expr_utilities;
          Alcotest.test_case "types" `Quick test_types;
          Alcotest.test_case "info views" `Quick test_info_views;
          Alcotest.test_case "dot export" `Quick test_dot_export;
        ] );
    ]
