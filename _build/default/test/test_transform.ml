(* Inliner tests: legality checks, structural validity of the
   transformed program, and — the strong property — preservation of the
   interpreter's observable behaviour. *)

let compile = Helpers.compile

let run_output ?(fuel = 20_000) prog =
  let o = Interp.run ~fuel prog in
  (o.Interp.output, o.Interp.truncated)

let check_behaviour msg before after =
  let out_b, trunc_b = run_output before in
  let out_a, trunc_a = run_output after in
  if not (trunc_b || trunc_a) then
    Alcotest.(check (list int)) msg out_b out_a

let demo =
  compile
    {|program d;
var g, h : int;
procedure double(var x : int);
var t : int;
begin
  t := x;
  x := t + t;
end;
procedure addk(k : int);
begin
  g := g + k;
end;
begin
  g := 3;
  call double(g);
  call addk(10);
  write g;
  h := 2;
  call double(h);
  write h;
end.|}

let test_basic_inline () =
  Alcotest.(check bool) "site 0 inlinable" true (Transform.Inline.inlinable demo 0);
  let after = Option.get (Transform.Inline.site demo ~sid:0) in
  Ir.Validate.check_exn after;
  Alcotest.(check int) "one fewer site" (Ir.Prog.n_sites demo - 1)
    (Ir.Prog.n_sites after);
  check_behaviour "output preserved" demo after

let test_inline_value_param () =
  let after = Option.get (Transform.Inline.site demo ~sid:1) in
  Ir.Validate.check_exn after;
  check_behaviour "by-value init preserved" demo after

let test_inline_everything () =
  let after = Transform.Inline.inline_all_once demo ~max:10 in
  Ir.Validate.check_exn after;
  Alcotest.(check int) "no sites left" 0 (Ir.Prog.n_sites after);
  check_behaviour "fully inlined program agrees" demo after

let test_local_reset_semantics () =
  (* The inlined local must be reset on every execution of the inlined
     body, like a fresh activation would be. *)
  let prog =
    compile
      {|program l;
var g, i : int;
procedure acc();
var t : int;
begin
  t := t + 1;
  g := g + t;
end;
begin
  g := 0;
  for i := 1 to 3 do
    call acc();
  end;
  write g;
end.|}
  in
  let after = Option.get (Transform.Inline.site prog ~sid:0) in
  Ir.Validate.check_exn after;
  check_behaviour "locals reset per iteration" prog after

let test_recursive_unfold () =
  let prog =
    compile
      {|program r;
var g : int;
procedure count(n : int);
begin
  if n > 0 then
    g := g + 1;
    call count(n - 1);
  end;
end;
begin
  g := 0;
  call count(5);
  write g;
end.|}
  in
  (* Inline the recursive site inside count: one unfolding. *)
  let inner =
    List.hd (Ir.Prog.sites_of prog (Helpers.proc_id prog "count"))
  in
  let after = Option.get (Transform.Inline.site prog ~sid:inner.Ir.Prog.sid) in
  Ir.Validate.check_exn after;
  check_behaviour "recursion unfolding" prog after

let test_not_inlinable () =
  let prog =
    compile
      {|program n;
var a : array[4] of int;
var k : int;
procedure elem(var x : int);
begin
  x := 1;
end;
procedure outer();
  procedure nested();
  begin
    skip;
  end;
begin
  call nested();
end;
begin
  call elem(a[k]);
  call outer();
end.|}
  in
  let sites = Ir.Prog.sites_of prog prog.Ir.Prog.main in
  List.iter
    (fun s ->
      Alcotest.(check bool)
        (Printf.sprintf "site %d not inlinable" s.Ir.Prog.sid)
        false
        (Transform.Inline.inlinable prog s.Ir.Prog.sid))
    sites;
  (* but the call inside outer (to a leaf without nesting) is. *)
  let inner = List.hd (Ir.Prog.sites_of prog (Helpers.proc_id prog "outer")) in
  Alcotest.(check bool) "nested leaf call ok" true
    (Transform.Inline.inlinable prog inner.Ir.Prog.sid)

let test_roundtrip_after_inline () =
  (* Inlining into main manufactures main-locals, which print like
     globals; the first reparse normalises them into globals (merging
     the declaration groups), after which printing is a fixpoint. *)
  let after = Transform.Inline.inline_all_once demo ~max:10 in
  let src = Ir.Pp.to_string after in
  let normalised = Ir.Pp.to_string (Frontend.Sema.compile_exn ~file:"inl" src) in
  let again = Ir.Pp.to_string (Frontend.Sema.compile_exn ~file:"inl2" normalised) in
  Alcotest.(check string) "printing is a fixpoint after normalisation" normalised
    again;
  check_behaviour "normalised program behaves identically" after
    (Frontend.Sema.compile_exn ~file:"inl3" src)

(* Random programs: inline a few sites, check validity + behaviour +
   analysis soundness on the result. *)
let prop_inline_preserves seed =
  let prog = Helpers.flat_of_seed ~n:15 seed in
  let after = Transform.Inline.inline_all_once prog ~max:5 in
  Ir.Validate.run after = Ok ()
  &&
  let out_b, trunc_b = run_output ~fuel:10_000 prog in
  let out_a, trunc_a = run_output ~fuel:10_000 after in
  trunc_b || trunc_a || out_b = out_a

let prop_inline_sound seed =
  let prog = Helpers.flat_of_seed ~n:15 seed in
  let after = Transform.Inline.inline_all_once prog ~max:5 in
  let t = Core.Analyze.run after in
  let o = Interp.run ~fuel:10_000 ~max_depth:256 after in
  let ok = ref true in
  Ir.Prog.iter_sites after (fun s ->
      let sid = s.Ir.Prog.sid in
      if o.Interp.calls_executed.(sid) > 0 then begin
        if not (Bitvec.subset (Interp.observed_mod o sid) (Core.Analyze.mod_of_site t sid))
        then ok := false;
        if not (Bitvec.subset (Interp.observed_use o sid) (Core.Analyze.use_of_site t sid))
        then ok := false
      end);
  !ok

let prop_inline_nested_ok seed =
  let prog = Helpers.nested_of_seed ~n:15 seed in
  let after = Transform.Inline.inline_all_once prog ~max:5 in
  Ir.Validate.run after = Ok ()
  &&
  let out_b, trunc_b = run_output ~fuel:10_000 prog in
  let out_a, trunc_a = run_output ~fuel:10_000 after in
  trunc_b || trunc_a || out_b = out_a

let () =
  Helpers.run "transform"
    [
      ( "inline",
        [
          Alcotest.test_case "basic by-ref inline" `Quick test_basic_inline;
          Alcotest.test_case "by-value parameter" `Quick test_inline_value_param;
          Alcotest.test_case "inline to fixpoint" `Quick test_inline_everything;
          Alcotest.test_case "locals reset per execution" `Quick
            test_local_reset_semantics;
          Alcotest.test_case "recursive unfolding" `Quick test_recursive_unfold;
          Alcotest.test_case "legality restrictions" `Quick test_not_inlinable;
          Alcotest.test_case "round-trips through the front end" `Quick
            test_roundtrip_after_inline;
        ] );
      ( "random",
        [
          Helpers.qtest ~count:40 "behaviour preserved (flat)" Helpers.arb_flat_prog
            prop_inline_preserves;
          Helpers.qtest ~count:40 "analysis sound after inlining"
            Helpers.arb_flat_prog prop_inline_sound;
          Helpers.qtest ~count:40 "behaviour preserved (nested)"
            Helpers.arb_nested_prog prop_inline_nested_ok;
        ] );
    ]
