(* End-to-end tests: the full Analyze pipeline on the example programs
   and on large generated inputs; cross-checks between the MOD and USE
   chains; report rendering. *)

let bank_source =
  {|program bank;
var balance, rate, log_count : int;
procedure audit(amount : int);
begin
  log_count := log_count + 1;
  write amount;
end;
procedure deposit(var account : int; amount : int);
begin
  account := account + amount;
  call audit(amount);
end;
procedure apply_interest(var account : int);
var delta : int;
begin
  delta := account * rate / 100;
  call deposit(account, delta);
end;
begin
  balance := 1000;
  rate := 5;
  call deposit(balance, 100);
  call apply_interest(balance);
end.|}

let test_bank () =
  let prog = Helpers.compile bank_source in
  let t = Core.Analyze.run prog in
  let site i = (List.nth (Ir.Prog.sites_of prog prog.Ir.Prog.main) i).Ir.Prog.sid in
  Helpers.check_var_set prog "MOD deposit(balance, 100)" [ "balance"; "log_count" ]
    (Core.Analyze.mod_of_site t (site 0));
  Helpers.check_var_set prog "USE deposit(balance, 100)"
    [ "balance"; "log_count" ]
    (Core.Analyze.use_of_site t (site 0));
  Helpers.check_var_set prog "MOD apply_interest(balance)"
    [ "balance"; "log_count" ]
    (Core.Analyze.mod_of_site t (site 1));
  Helpers.check_var_set prog "USE apply_interest(balance)"
    [ "balance"; "rate"; "log_count" ]
    (Core.Analyze.use_of_site t (site 1));
  (* rate is read-only everywhere: in no MOD set. *)
  Ir.Prog.iter_sites prog (fun s ->
      Alcotest.(check bool) "rate never modified" false
        (Bitvec.get (Core.Analyze.mod_of_site t s.Ir.Prog.sid)
           (Helpers.var_id prog "rate")))

let test_report_rendering () =
  let prog = Helpers.compile bank_source in
  let t = Core.Analyze.run prog in
  let report = Format.asprintf "%a" Core.Analyze.pp_report t in
  List.iter
    (fun fragment ->
      Alcotest.(check bool)
        (Printf.sprintf "report mentions %S" fragment)
        true
        (let n = String.length report and m = String.length fragment in
         let rec go i = i + m <= n && (String.sub report i m = fragment || go (i + 1)) in
         go 0))
    [ "GMOD"; "RMOD"; "MOD ="; "USE ="; "deposit"; "apply_interest" ]

let test_large_flat () =
  let prog = Workload.Families.fortran_style ~seed:11 ~n:3000 in
  Ir.Validate.check_exn prog;
  let t = Core.Analyze.run prog in
  (* Sanity: results exist for every proc and site without blowup. *)
  Alcotest.(check int) "gmod count" (Ir.Prog.n_procs prog)
    (Array.length t.Core.Analyze.gmod);
  let sid = (Ir.Prog.site prog 0).Ir.Prog.sid in
  ignore (Core.Analyze.mod_of_site t sid)

let test_large_nested () =
  let prog = Workload.Families.pascal_style ~seed:5 ~n:1500 ~depth:6 in
  Ir.Validate.check_exn prog;
  let t = Core.Analyze.run prog in
  let oracle =
    Baseline.Iterative.gmod t.Core.Analyze.info t.Core.Analyze.call
      ~imod_plus:t.Core.Analyze.imod_plus
  in
  Alcotest.(check bool) "multi-level correct at scale" true
    (Helpers.gmod_arrays_equal t.Core.Analyze.gmod oracle)

let test_source_pipeline_through_file () =
  (* Full text pipeline: generated program -> source -> compile ->
     analyze -> identical MOD answers. *)
  let prog = Workload.Families.fortran_style ~seed:3 ~n:200 in
  let t1 = Core.Analyze.run prog in
  let prog2 = Helpers.compile (Ir.Pp.to_string prog) in
  let t2 = Core.Analyze.run prog2 in
  (* Site ids are assigned in textual order by the front end but in
     construction order by the generator; match sites positionally by
     a pre-order walk of each procedure's body.  Variable ids do
     coincide (declarations print in id order). *)
  Ir.Prog.iter_procs prog (fun pr ->
      let sids1 = Ir.Stmt.call_sites pr.Ir.Prog.body in
      let pr2 = Ir.Prog.proc prog2 pr.Ir.Prog.pid in
      let sids2 = Ir.Stmt.call_sites pr2.Ir.Prog.body in
      List.iter2
        (fun s1 s2 ->
          let m1 = Core.Analyze.mod_of_site t1 s1 in
          let m2 = Core.Analyze.mod_of_site t2 s2 in
          if not (Bitvec.equal m1 m2) then
            Alcotest.failf "site %d/%d differs" s1 s2)
        sids1 sids2)

let prop_use_mod_independent seed =
  (* Computing USE never perturbs MOD: run twice in different orders. *)
  let prog = Helpers.flat_of_seed seed in
  let t1 = Core.Analyze.run prog in
  let t2 = Core.Analyze.run prog in
  Helpers.gmod_arrays_equal t1.Core.Analyze.gmod t2.Core.Analyze.gmod
  && Helpers.gmod_arrays_equal t1.Core.Analyze.guse t2.Core.Analyze.guse

let prop_analyze_matches_manual seed =
  (* Analyze.run = manually chained passes. *)
  let prog = Helpers.flat_of_seed seed in
  let t = Core.Analyze.run prog in
  let p = Helpers.pipeline prog in
  Helpers.gmod_arrays_equal t.Core.Analyze.imod_plus p.Helpers.imod_plus
  && t.Core.Analyze.rmod.Core.Rmod.rmod = p.Helpers.rmod.Core.Rmod.rmod

let () =
  Helpers.run "integration"
    [
      ( "programs",
        [
          Alcotest.test_case "bank example end to end" `Quick test_bank;
          Alcotest.test_case "report rendering" `Quick test_report_rendering;
          Alcotest.test_case "3000-procedure flat program" `Slow test_large_flat;
          Alcotest.test_case "1500-procedure nested program vs oracle" `Slow
            test_large_nested;
          Alcotest.test_case "source round trip preserves answers" `Quick
            test_source_pipeline_through_file;
        ] );
      ( "properties",
        [
          Helpers.qtest ~count:30 "deterministic" Helpers.arb_flat_prog
            prop_use_mod_independent;
          Helpers.qtest ~count:30 "driver = manual chaining" Helpers.arb_flat_prog
            prop_analyze_matches_manual;
        ] );
    ]
