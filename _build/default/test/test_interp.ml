(* Interpreter unit tests: arithmetic, control flow, parameter passing
   semantics (by value vs by reference, element aliasing, static
   links), fuel, and the effect log. *)

let compile = Helpers.compile
let run ?fuel src = Interp.run ?fuel (compile src)

let check_output msg expected o =
  Alcotest.(check (list int)) msg expected o.Interp.output;
  Alcotest.(check bool) "not truncated" false o.Interp.truncated

let test_arith () =
  check_output "arithmetic"
    [ 7; 1; 6; 2; 1; 1; 0; 0; 1; -3 ]
    (run
       {|program a;
begin
  write 1 + 2 * 3;
  write 7 / 4;
  write 2 * (1 + 2);
  write 17 % 5;
  write 3 < 4 and 4 < 5;
  write 3 < 4 or 10 < 5;
  write not true;
  write 4 <= 3;
  write 4 != 3;
  write -3;
end.|})

let test_control_flow () =
  check_output "if/while/for"
    [ 1; 10; 55 ]
    (run
       {|program c;
var s, i : int;
begin
  if 3 < 4 then
    write 1;
  else
    write 0;
  end;
  s := 0;
  while s < 10 do
    s := s + 1;
  end;
  write s;
  s := 0;
  for i := 1 to 10 do
    s := s + i;
  end;
  write s;
end.|})

let test_by_value_is_copy () =
  check_output "callee writes don't escape by-value args" [ 5 ]
    (run
       {|program v;
var g : int;
procedure f(x : int);
begin
  x := 99;
end;
begin
  g := 5;
  call f(g);
  write g;
end.|})

let test_by_ref_shares () =
  check_output "by-ref writes escape" [ 99 ]
    (run
       {|program r;
var g : int;
procedure f(var x : int);
begin
  x := 99;
end;
begin
  g := 5;
  call f(g);
  write g;
end.|})

let test_element_by_ref () =
  check_output "array element aliased by reference" [ 42; 0 ]
    (run
       {|program e;
var a : array[4] of int;
procedure f(var x : int);
begin
  x := 42;
end;
begin
  call f(a[2]);
  write a[2];
  write a[1];
end.|})

let test_swap () =
  check_output "classic swap through two var params" [ 2; 1 ]
    (run
       {|program s;
var x, y : int;
procedure swap(var a : int; var b : int);
var t : int;
begin
  t := a;
  a := b;
  b := t;
end;
begin
  x := 1;
  y := 2;
  call swap(x, y);
  write x;
  write y;
end.|})

let test_aliased_params () =
  (* swap(x, x) must leave x intact — both formals share one cell. *)
  check_output "aliased formals" [ 1 ]
    (run
       {|program s;
var x, y : int;
procedure swap(var a : int; var b : int);
var t : int;
begin
  t := a;
  a := b;
  b := t;
end;
begin
  x := 1;
  call swap(x, x);
  write x;
end.|})

let test_recursion () =
  check_output "factorial by reference accumulator" [ 120 ]
    (run
       {|program f;
var acc : int;
procedure fact(n : int);
begin
  if n > 1 then
    acc := acc * n;
    call fact(n - 1);
  end;
end;
begin
  acc := 1;
  call fact(5);
  write acc;
end.|})

let test_static_links () =
  (* The nested procedure must write the *current* activation's local
     and outer recursion levels must not see inner values. *)
  check_output "nested procedure uses the innermost enclosing frame" [ 1; 1 ]
    (run
       {|program n;
var depth : int;
procedure outer(level : int);
var mine : int;
  procedure bump();
  begin
    mine := mine + 1;
  end;
begin
  mine := 0;
  call bump();
  if level < 2 then
    call outer(level + 1);
  end;
  write mine;
end;
begin
  call outer(1);
end.|})

let test_read_input () =
  check_output "reads consume 1, 2, 3" [ 1; 2; 3 ]
    (run
       {|program i;
var a, b, c : int;
begin
  read a;
  read b;
  read c;
  write a;
  write b;
  write c;
end.|})

let test_array_wraparound () =
  (* Interpreter semantics: indices wrap modulo the extent. *)
  check_output "modular indexing" [ 9; 9 ]
    (run
       {|program w;
var a : array[4] of int;
begin
  a[5] := 9;
  write a[1];
  write a[5];
end.|})

let test_fuel () =
  let o =
    run ~fuel:100
      {|program l;
var x : int;
begin
  while true do
    x := x + 1;
  end;
  write x;
end.|}
  in
  Alcotest.(check bool) "truncated" true o.Interp.truncated;
  Alcotest.(check (list int)) "no output" [] o.Interp.output

let test_division_fault () =
  let o =
    run
      {|program d;
var x, y : int;
begin
  write 1;
  y := 0;
  x := 3 / y;
  write x;
end.|}
  in
  Alcotest.(check bool) "truncated" true o.Interp.truncated;
  Alcotest.(check (list int)) "output before the fault" [ 1 ] o.Interp.output

let test_observed_mod () =
  let prog =
    compile
      {|program o;
var g, h : int;
procedure f(var x : int);
begin
  x := 1;
end;
begin
  call f(g);
end.|}
  in
  let o = Interp.run prog in
  Helpers.check_var_set prog "observed mod" [ "g" ] (Interp.observed_mod o 0);
  Helpers.check_var_set prog "observed use" [] (Interp.observed_use o 0);
  Alcotest.(check int) "ran once" 1 o.Interp.calls_executed.(0)

let test_observed_array () =
  let prog =
    compile
      {|program o;
var a : array[4] of int;
var s : int;
procedure touch();
var i : int;
begin
  for i := 1 to 3 do
    a[i] := a[i] + 1;
  end;
end;
begin
  call touch();
end.|}
  in
  let o = Interp.run prog in
  Helpers.check_var_set prog "whole array observed" [ "a" ] (Interp.observed_mod o 0);
  Helpers.check_var_set prog "array also read" [ "a" ] (Interp.observed_use o 0)

let test_locals_not_observed () =
  let prog =
    compile
      {|program o;
var g : int;
procedure f();
var t : int;
begin
  t := 3;
  g := t;
end;
begin
  call f();
end.|}
  in
  let o = Interp.run prog in
  Helpers.check_var_set prog "callee local invisible" [ "g" ] (Interp.observed_mod o 0)

let () =
  Helpers.run "interp"
    [
      ( "semantics",
        [
          Alcotest.test_case "arithmetic and booleans" `Quick test_arith;
          Alcotest.test_case "control flow" `Quick test_control_flow;
          Alcotest.test_case "by-value copies" `Quick test_by_value_is_copy;
          Alcotest.test_case "by-ref shares" `Quick test_by_ref_shares;
          Alcotest.test_case "array element by-ref" `Quick test_element_by_ref;
          Alcotest.test_case "swap" `Quick test_swap;
          Alcotest.test_case "aliased parameters" `Quick test_aliased_params;
          Alcotest.test_case "recursion" `Quick test_recursion;
          Alcotest.test_case "static links" `Quick test_static_links;
          Alcotest.test_case "read input" `Quick test_read_input;
          Alcotest.test_case "modular indexing" `Quick test_array_wraparound;
          Alcotest.test_case "fuel exhaustion" `Quick test_fuel;
          Alcotest.test_case "division fault" `Quick test_division_fault;
        ] );
      ( "tracing",
        [
          Alcotest.test_case "observed modification" `Quick test_observed_mod;
          Alcotest.test_case "observed array effects" `Quick test_observed_array;
          Alcotest.test_case "callee locals invisible" `Quick test_locals_not_observed;
        ] );
    ]
