(* Lexer tests: token streams, positions, comments, error cases. *)

module T = Frontend.Token
module L = Frontend.Lexer

let toks src = List.map fst (L.tokenize src)

let tok_testable : T.t Alcotest.testable =
  Alcotest.testable (fun ppf t -> Fmt.string ppf (T.to_string t)) ( = )

let check_toks msg expected src =
  Alcotest.(check (list tok_testable)) msg expected (toks src)

let test_empty () = check_toks "empty" [ T.EOF ] ""

let test_keywords_idents () =
  check_toks "keywords vs identifiers"
    [ T.PROGRAM; T.IDENT "programx"; T.VAR; T.IDENT "variable"; T.BEGIN; T.END; T.EOF ]
    "program programx var variable begin end"

let test_case_sensitive () =
  check_toks "keywords are lower-case" [ T.IDENT "PROGRAM"; T.IDENT "If"; T.EOF ]
    "PROGRAM If"

let test_numbers () =
  check_toks "integers" [ T.INT 0; T.INT 42; T.INT 1234567; T.EOF ] "0 42 1234567"

let test_operators () =
  check_toks "every operator"
    [
      T.PLUS; T.MINUS; T.STAR; T.SLASH; T.PERCENT; T.LT; T.LE; T.GT; T.GE; T.EQEQ;
      T.NE; T.ASSIGN; T.COLON; T.SEMI; T.COMMA; T.DOT; T.LPAREN; T.RPAREN;
      T.LBRACKET; T.RBRACKET; T.EOF;
    ]
    "+ - * / % < <= > >= == != := : ; , . ( ) [ ]"

let test_no_space_operators () =
  check_toks "adjacent operators split correctly"
    [ T.IDENT "a"; T.LE; T.IDENT "b"; T.ASSIGN; T.INT 1; T.EOF ] "a<=b:=1"

let test_line_comment () =
  check_toks "line comment" [ T.INT 1; T.INT 2; T.EOF ] "1 // everything here\n2"

let test_block_comment () =
  check_toks "block comment" [ T.INT 1; T.INT 2; T.EOF ] "1 (* a b \n c *) 2"

let test_nested_comment () =
  check_toks "nested block comment" [ T.INT 1; T.INT 2; T.EOF ]
    "1 (* outer (* inner *) still out *) 2"

let test_positions () =
  let all = L.tokenize ~file:"f.mp" "ab\n  cd" in
  match all with
  | [ (T.IDENT "ab", l1); (T.IDENT "cd", l2); (T.EOF, _) ] ->
    Alcotest.(check (pair int int)) "first" (1, 1)
      (l1.Frontend.Loc.line, l1.Frontend.Loc.col);
    Alcotest.(check (pair int int)) "second" (2, 3)
      (l2.Frontend.Loc.line, l2.Frontend.Loc.col);
    Alcotest.(check string) "file" "f.mp" l1.Frontend.Loc.file
  | _ -> Alcotest.fail "unexpected token stream"

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

let expect_error src fragment =
  match L.tokenize src with
  | exception L.Error (_, msg) ->
    if not (contains msg fragment) then
      Alcotest.failf "error %S does not mention %S" msg fragment
  | _ -> Alcotest.failf "expected a lexical error for %S" src

let test_errors () =
  expect_error "@" "unexpected character";
  expect_error "(* never closed" "unterminated comment";
  expect_error "= 3" "unexpected character";
  expect_error "!x" "unexpected character";
  expect_error "99999999999999999999999" "out of range"

let () =
  Helpers.run "lexer"
    [
      ( "lexer",
        [
          Alcotest.test_case "empty input" `Quick test_empty;
          Alcotest.test_case "keywords vs identifiers" `Quick test_keywords_idents;
          Alcotest.test_case "case sensitivity" `Quick test_case_sensitive;
          Alcotest.test_case "integer literals" `Quick test_numbers;
          Alcotest.test_case "operators" `Quick test_operators;
          Alcotest.test_case "operators without spaces" `Quick test_no_space_operators;
          Alcotest.test_case "line comments" `Quick test_line_comment;
          Alcotest.test_case "block comments" `Quick test_block_comment;
          Alcotest.test_case "nested comments" `Quick test_nested_comment;
          Alcotest.test_case "positions" `Quick test_positions;
          Alcotest.test_case "lexical errors" `Quick test_errors;
        ] );
    ]
