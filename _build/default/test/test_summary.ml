(* §5 tests: DMOD/MOD per call site (equation 2 + alias extension) and
   per statement. *)

let compile = Helpers.compile

let site_of prog ~caller i =
  List.nth (Ir.Prog.sites_of prog (Helpers.proc_id prog caller)) i

let main_site prog i = List.nth (Ir.Prog.sites_of prog prog.Ir.Prog.main) i

let test_dmod_projection () =
  let prog =
    compile
      {|program m;
var g, untouched : int;
procedure f(var x : int; y : int);
var l : int;
begin
  x := y;
  g := 1;
  l := 2;
end;
begin
  call f(g, untouched);
end.|}
  in
  let t = Core.Analyze.run prog in
  let sid = (main_site prog 0).Ir.Prog.sid in
  (* DMOD: g both as global and as projected actual; f's local and
     by-value formal excluded; untouched only read. *)
  Helpers.check_var_set prog "DMOD" [ "g" ] (Core.Analyze.dmod_of_site t sid);
  (* g is passed by reference but f only writes x, never reads it, so
     g's value is not used; the by-value argument is evaluated. *)
  Helpers.check_var_set prog "USE includes arg evaluation" [ "untouched" ]
    (Core.Analyze.use_of_site t sid)

let test_mod_adds_aliases () =
  let prog =
    compile
      {|program m;
var g, h : int;
procedure setter(var a : int);
begin
  a := 1;
end;
procedure f(var x : int; var y : int);
begin
  call setter(x);
end;
begin
  call f(g, g);
  call f(g, h);
end.|}
  in
  let t = Core.Analyze.run prog in
  (* Inside f, x may alias y (first site passes g twice).  The call
     setter(x) definitely modifies x; the alias extension adds y. *)
  let inner = (site_of prog ~caller:"f" 0).Ir.Prog.sid in
  Helpers.check_var_set prog "DMOD(setter(x))" [ "f.x" ]
    (Core.Analyze.dmod_of_site t inner);
  Helpers.check_var_set prog "MOD adds aliased y and g" [ "g"; "f.x"; "f.y" ]
    (Core.Analyze.mod_of_site t inner)

let test_transitive_chain () =
  let prog = Workload.Families.global_chain 5 in
  let t = Core.Analyze.run prog in
  let sid = (main_site prog 0).Ir.Prog.sid in
  Helpers.check_var_set prog "main's call reaches the deep write" [ "g0" ]
    (Core.Analyze.mod_of_site t sid)

let test_dmod_stmt () =
  let prog =
    compile
      {|program m;
var g, h : int;
procedure f();
begin
  g := 1;
end;
begin
  if h < 3 then
    call f();
    h := 2;
  end;
end.|}
  in
  let t = Core.Analyze.run prog in
  let main = Ir.Prog.proc prog prog.Ir.Prog.main in
  let if_stmt = List.hd main.Ir.Prog.body in
  (* Equation (2) on the whole if: LMODs inside plus the projection of
     the call. *)
  Helpers.check_var_set prog "DMOD(if)" [ "g"; "h" ]
    (Core.Summary.dmod_stmt t.Core.Analyze.summary ~proc:prog.Ir.Prog.main if_stmt);
  Helpers.check_var_set prog "DUSE(if)" [ "h" ]
    (Core.Summary.duse_stmt t.Core.Analyze.summary ~proc:prog.Ir.Prog.main if_stmt)

let prop_dmod_subset_mod seed =
  let prog = Helpers.flat_of_seed seed in
  let t = Core.Analyze.run prog in
  let ok = ref true in
  Ir.Prog.iter_sites prog (fun s ->
      let d = Core.Analyze.dmod_of_site t s.Ir.Prog.sid in
      let m = Core.Analyze.mod_of_site t s.Ir.Prog.sid in
      if not (Bitvec.subset d m) then ok := false);
  !ok

let prop_mod_within_visible_or_deep seed =
  (* MOD(s) of a flat program contains only globals and variables of
     the caller (its formals/locals) — everything else is dead at s. *)
  let prog = Helpers.flat_of_seed seed in
  let t = Core.Analyze.run prog in
  let info = t.Core.Analyze.info in
  let ok = ref true in
  Ir.Prog.iter_sites prog (fun s ->
      let m = Core.Analyze.mod_of_site t s.Ir.Prog.sid in
      let visible = Ir.Info.visible info s.Ir.Prog.caller in
      if not (Bitvec.subset m visible) then ok := false);
  !ok

let prop_dmod_matches_definition seed =
  (* Recompute the projection by hand from GMOD and compare. *)
  let prog = Helpers.flat_of_seed seed in
  let t = Core.Analyze.run prog in
  let info = t.Core.Analyze.info in
  let ok = ref true in
  Ir.Prog.iter_sites prog (fun s ->
      let callee = Ir.Prog.proc prog s.Ir.Prog.callee in
      let expected = Bitvec.copy t.Core.Analyze.gmod.(s.Ir.Prog.callee) in
      ignore
        (Bitvec.inter_into ~src:(Ir.Info.non_local info s.Ir.Prog.callee) ~dst:expected);
      Array.iteri
        (fun i arg ->
          match arg with
          | Ir.Prog.Arg_ref lv ->
            if Bitvec.get t.Core.Analyze.gmod.(s.Ir.Prog.callee) callee.Ir.Prog.formals.(i)
            then Bitvec.set expected (Ir.Expr.lvalue_base lv)
          | Ir.Prog.Arg_value _ -> ())
        s.Ir.Prog.args;
      if not (Bitvec.equal expected (Core.Analyze.dmod_of_site t s.Ir.Prog.sid)) then
        ok := false);
  !ok

let prop_rmod_consistent_with_gmod seed =
  (* GMOD(q) restricted to q's by-ref formals = RMOD(q): the two
     decomposed subproblems agree where they overlap. *)
  let prog = Helpers.flat_of_seed seed in
  let t = Core.Analyze.run prog in
  let ok = ref true in
  Ir.Prog.iter_procs prog (fun pr ->
      Array.iter
        (fun f ->
          if Ir.Prog.is_ref_formal (Ir.Prog.var prog f) then begin
            let in_gmod = Bitvec.get t.Core.Analyze.gmod.(pr.Ir.Prog.pid) f in
            let in_rmod = Core.Rmod.modified t.Core.Analyze.rmod f in
            if in_gmod <> in_rmod then ok := false
          end)
        pr.Ir.Prog.formals);
  !ok

let () =
  Helpers.run "summary"
    [
      ( "sites",
        [
          Alcotest.test_case "projection of GMOD at a site" `Quick
            test_dmod_projection;
          Alcotest.test_case "MOD adds alias pairs" `Quick test_mod_adds_aliases;
          Alcotest.test_case "transitive chain" `Quick test_transitive_chain;
          Alcotest.test_case "statement-level DMOD (eq 2)" `Quick test_dmod_stmt;
        ] );
      ( "properties",
        [
          Helpers.qtest "DMOD ⊆ MOD" Helpers.arb_flat_prog prop_dmod_subset_mod;
          Helpers.qtest "MOD stays within the caller's scope" Helpers.arb_flat_prog
            prop_mod_within_visible_or_deep;
          Helpers.qtest "DMOD matches its definition" Helpers.arb_flat_prog
            prop_dmod_matches_definition;
          Helpers.qtest "RMOD = GMOD restricted to ref formals" Helpers.arb_flat_prog
            prop_rmod_consistent_with_gmod;
        ] );
    ]
