# Convenience targets; everything is plain dune underneath.

all:
	dune build @all

test:
	dune runtest

test-force:
	dune runtest --force --no-buffer 2>&1 | tee test_output.txt

bench:
	dune exec bench/main.exe 2>&1 | tee bench_output.txt

bench-quick:
	dune exec bench/main.exe -- quick

examples:
	dune exec examples/quickstart.exe
	dune exec examples/parallelize.exe
	dune exec examples/optimizer.exe
	dune exec examples/nested_pascal.exe

.PHONY: all test test-force bench bench-quick examples
