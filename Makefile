# Convenience targets; everything is plain dune underneath.

all:
	dune build @all
	$(MAKE) --no-print-directory parallel-smoke
	$(MAKE) --no-print-directory lint-smoke
	$(MAKE) --no-print-directory dataflow-smoke
	$(MAKE) --no-print-directory obs-smoke
	$(MAKE) --no-print-directory serve-smoke
	$(MAKE) --no-print-directory ptsto-smoke
	$(MAKE) --no-print-directory must-smoke
	$(MAKE) --no-print-directory bench-check

test:
	dune runtest

test-force:
	dune runtest --force --no-buffer 2>&1 | tee test_output.txt

bench:
	dune exec bench/main.exe 2>&1 | tee bench_output.txt

bench-quick:
	dune exec bench/main.exe -- quick

# Smoke-test the telemetry surface: profile every example/program and
# validate the emitted JSON with the repo's own parser (no jq needed).
profile-smoke:
	dune build bin/sidefx.exe
	@for f in examples/*.mp programs/*.mp; do \
	  echo "== $$f"; \
	  ./_build/default/bin/sidefx.exe profile $$f --json \
	    | ./_build/default/bin/sidefx.exe json-validate || exit 1; \
	done

# Smoke-test the incremental engine end to end: for every example
# program, run the same random edit script through batch and
# incremental analysis, require identical output, and validate the
# JSON report with the repo's own parser.
incremental-smoke:
	dune build bin/sidefx.exe
	@for f in programs/*.mp; do \
	  echo "== $$f"; \
	  ./_build/default/bin/sidefx.exe edit $$f --random 8 --seed 7 > smoke_batch.tmp || exit 1; \
	  ./_build/default/bin/sidefx.exe edit $$f --random 8 --seed 7 --incremental > smoke_inc.tmp || exit 1; \
	  diff smoke_batch.tmp smoke_inc.tmp || exit 1; \
	  ./_build/default/bin/sidefx.exe edit $$f --random 8 --seed 7 --incremental --json \
	    | ./_build/default/bin/sidefx.exe json-validate || exit 1; \
	done; rm -f smoke_batch.tmp smoke_inc.tmp

# Smoke-test the parallel solvers: analyze every sample program
# sequentially and on a 4-way domain pool and require byte-identical
# output — parallelism must be a pure performance knob (docs/parallel.md).
parallel-smoke:
	dune build bin/sidefx.exe
	@for f in examples/*.mp programs/*.mp; do \
	  echo "== $$f"; \
	  ./_build/default/bin/sidefx.exe analyze $$f > smoke_seq.tmp || exit 1; \
	  ./_build/default/bin/sidefx.exe analyze $$f --jobs 4 > smoke_par.tmp || exit 1; \
	  diff smoke_seq.tmp smoke_par.tmp || exit 1; \
	done; rm -f smoke_seq.tmp smoke_par.tmp

# Smoke-test the lint pipeline: lint every sample program, validate the
# JSON report with the repo's own parser, and require the 4-way pooled
# run to be byte-identical.  lint exits 1 when it has findings (most
# samples do), so only exit codes >= 2 are failures here.
lint-smoke:
	dune build bin/sidefx.exe
	@for f in examples/*.mp programs/*.mp; do \
	  echo "== $$f"; \
	  ./_build/default/bin/sidefx.exe lint $$f --json > lint_smoke.tmp; \
	  [ $$? -le 1 ] || exit 1; \
	  ./_build/default/bin/sidefx.exe json-validate < lint_smoke.tmp || exit 1; \
	  ./_build/default/bin/sidefx.exe lint $$f --json --jobs 4 > lint_smoke4.tmp; \
	  [ $$? -le 1 ] || exit 1; \
	  cmp lint_smoke.tmp lint_smoke4.tmp || exit 1; \
	done; rm -f lint_smoke.tmp lint_smoke4.tmp

# Smoke-test the statement-level dataflow layer: the per-procedure
# solver summary must emit valid JSON and be byte-identical on a 4-way
# pool, and the dead-store / rmw-hint rules must be jobs-invariant too
# (lint exits 1 when it has findings, so only codes >= 2 fail).
dataflow-smoke:
	dune build bin/sidefx.exe
	@for f in examples/*.mp programs/*.mp; do \
	  echo "== $$f"; \
	  ./_build/default/bin/sidefx.exe dataflow $$f --json > df_smoke.tmp || exit 1; \
	  ./_build/default/bin/sidefx.exe json-validate < df_smoke.tmp || exit 1; \
	  ./_build/default/bin/sidefx.exe dataflow $$f --json --jobs 4 > df_smoke4.tmp || exit 1; \
	  cmp df_smoke.tmp df_smoke4.tmp || exit 1; \
	  ./_build/default/bin/sidefx.exe lint $$f --rules dead-store,rmw-hint --json > df_lint.tmp; \
	  [ $$? -le 1 ] || exit 1; \
	  ./_build/default/bin/sidefx.exe json-validate < df_lint.tmp || exit 1; \
	  ./_build/default/bin/sidefx.exe lint $$f --rules dead-store,rmw-hint --json --jobs 4 > df_lint4.tmp; \
	  [ $$? -le 1 ] || exit 1; \
	  cmp df_lint.tmp df_lint4.tmp || exit 1; \
	done; rm -f df_smoke.tmp df_smoke4.tmp df_lint.tmp df_lint4.tmp

# Smoke-test the explain/provenance surface and the deep-profiling
# sinks: one witnessed fact per lint code (SFX008 only fires in
# dataflow_demo.mp, the rest in lint_demo.mp), the --all completeness
# contract on every sample program, and a Chrome trace-event export
# plus stats --json histogram table validated with the repo's own
# JSON parser.
obs-smoke:
	dune build bin/sidefx.exe
	@for code in SFX001 SFX002 SFX003 SFX004 SFX005 SFX006 SFX007 SFX009; do \
	  echo "== diag:$$code"; \
	  ./_build/default/bin/sidefx.exe explain programs/lint_demo.mp \
	    --fact diag:$$code || exit 1; \
	  ./_build/default/bin/sidefx.exe explain programs/lint_demo.mp \
	    --fact diag:$$code --json \
	    | ./_build/default/bin/sidefx.exe json-validate || exit 1; \
	done
	@echo "== diag:SFX008"; \
	./_build/default/bin/sidefx.exe explain programs/dataflow_demo.mp \
	  --fact diag:SFX008 || exit 1; \
	./_build/default/bin/sidefx.exe explain programs/dataflow_demo.mp \
	  --fact diag:SFX008 --json \
	  | ./_build/default/bin/sidefx.exe json-validate || exit 1
	@for code in SFX010 SFX011; do \
	  echo "== diag:$$code"; \
	  ./_build/default/bin/sidefx.exe explain programs/ptr_lint.mp \
	    --fact diag:$$code || exit 1; \
	  ./_build/default/bin/sidefx.exe explain programs/ptr_lint.mp \
	    --fact diag:$$code --json \
	    | ./_build/default/bin/sidefx.exe json-validate || exit 1; \
	done
	@for f in examples/*.mp programs/*.mp; do \
	  echo "== explain --all $$f"; \
	  ./_build/default/bin/sidefx.exe explain $$f --all || exit 1; \
	  ./_build/default/bin/sidefx.exe explain $$f --all --json \
	    | ./_build/default/bin/sidefx.exe json-validate || exit 1; \
	done
	@echo "== profile --trace-out"; \
	./_build/default/bin/sidefx.exe profile programs/lint_demo.mp \
	  --trace-out obs_smoke_trace.tmp > /dev/null || exit 1; \
	./_build/default/bin/sidefx.exe json-validate < obs_smoke_trace.tmp \
	  || exit 1; \
	grep -q '"traceEvents"' obs_smoke_trace.tmp || exit 1; \
	rm -f obs_smoke_trace.tmp
	@echo "== stats --json histograms"; \
	./_build/default/bin/sidefx.exe stats programs/lint_demo.mp --json \
	  > obs_smoke_stats.tmp || exit 1; \
	./_build/default/bin/sidefx.exe json-validate < obs_smoke_stats.tmp \
	  || exit 1; \
	grep -q '"histograms"' obs_smoke_stats.tmp || exit 1; \
	rm -f obs_smoke_stats.tmp

# Smoke-test the analysis server over stdio: one scripted session that
# exercises every request type (load, every query class, an edit with a
# lint delta, explain by fact and --all, stats, unload, shutdown).
# json-validate parses exactly one value, so each response line is
# validated on its own; any "ok":false response fails the target.
serve-smoke:
	dune build bin/sidefx.exe
	@out=serve_smoke.tmp; \
	printf '%s\n' \
	  '{"id":1,"op":"load","program":"tiny","source":"program t; var g : int; begin g := 1; end."}' \
	  '{"id":2,"op":"query","program":"demo","what":"gmod","proc":"logit"}' \
	  '{"id":3,"op":"query","program":"demo","what":"guse","proc":"tally"}' \
	  '{"id":4,"op":"query","program":"demo","what":"rmod","proc":"scale","var":"a"}' \
	  '{"id":5,"op":"query","program":"demo","what":"ruse","proc":"tally","var":"cell"}' \
	  '{"id":6,"op":"query","program":"demo","what":"alias","proc":"outer"}' \
	  '{"id":7,"op":"query","program":"demo","what":"purity","proc":"scale"}' \
	  '{"id":8,"op":"query","program":"demo","what":"mod","site":0}' \
	  '{"id":9,"op":"query","program":"demo","what":"use","site":0}' \
	  '{"id":10,"op":"query","program":"demo","what":"must","proc":"tally"}' \
	  '{"id":11,"op":"edit","program":"demo","session":"s","script":"add-assign logit total = 3","lint":true}' \
	  '{"id":12,"op":"query","program":"demo","session":"s","what":"lint-delta"}' \
	  '{"id":13,"op":"query","program":"demo","session":"s","what":"source"}' \
	  '{"id":14,"op":"explain","program":"demo","fact":"gmod:logit:unread"}' \
	  '{"id":15,"op":"explain","program":"demo","fact":"must:logit:unread"}' \
	  '{"id":16,"op":"explain","program":"demo","all":true}' \
	  '{"id":17,"op":"stats"}' \
	  '{"id":18,"op":"unload","program":"tiny"}' \
	  '{"id":19,"op":"shutdown"}' \
	| ./_build/default/bin/sidefx.exe serve --load demo=programs/lint_demo.mp \
	  > $$out || { echo "serve-smoke: server exited non-zero"; exit 1; }; \
	n=0; while IFS= read -r line; do \
	  n=$$((n+1)); \
	  printf '%s\n' "$$line" \
	    | ./_build/default/bin/sidefx.exe json-validate \
	    || { echo "serve-smoke: response $$n is not valid JSON"; exit 1; }; \
	done < $$out; \
	[ $$n -eq 19 ] \
	  || { echo "serve-smoke: expected 19 responses, got $$n"; cat $$out; exit 1; }; \
	if grep -q '"ok":false' $$out; then \
	  echo "serve-smoke: error response:"; grep '"ok":false' $$out; exit 1; \
	fi; \
	rm -f $$out; \
	echo "serve-smoke: 19 responses, all valid JSON, no errors"

# Smoke-test the points-to surface: both tiers on the pointer demo
# (raw solution + JSON validated by the repo's own parser + the
# interpreter soundness oracle), Andersen strictly refining
# Steensgaard's section-5 pair count, and one alias fact explained
# through its Apointsto witness.
ptsto-smoke:
	dune build bin/sidefx.exe
	@for tier in steensgaard andersen; do \
	  echo "== ptsto --tier $$tier"; \
	  ./_build/default/bin/sidefx.exe ptsto programs/pointers.mp --tier $$tier \
	    > ptsto_$$tier.tmp || exit 1; \
	  cat ptsto_$$tier.tmp; \
	  ./_build/default/bin/sidefx.exe ptsto programs/pointers.mp --tier $$tier --json \
	    | ./_build/default/bin/sidefx.exe json-validate || exit 1; \
	  ./_build/default/bin/sidefx.exe check programs/pointers.mp --ptsto=$$tier || exit 1; \
	done; \
	s=$$(awk 'END { print $$1 }' ptsto_steensgaard.tmp); \
	a=$$(awk 'END { print $$1 }' ptsto_andersen.tmp); \
	rm -f ptsto_steensgaard.tmp ptsto_andersen.tmp; \
	[ "$$a" -lt "$$s" ] \
	  || { echo "ptsto-smoke: andersen ($$a pairs) does not refine steensgaard ($$s)"; exit 1; }
	@echo "== explain Apointsto"; \
	./_build/default/bin/sidefx.exe explain programs/pointers.mp --fact alias:bump:x:cell \
	  | grep -q 'points-to projection' || exit 1; \
	./_build/default/bin/sidefx.exe explain programs/pointers.mp --fact alias:bump:x:cell --json \
	  | ./_build/default/bin/sidefx.exe json-validate || exit 1; \
	echo "ptsto-smoke: ok"

# Smoke-test the must-modify surface end to end on the MUSTMOD demo:
# the report (human + JSON, jobs-4 byte-identical), both MUSTMOD-fed
# lint rules actually firing (SFX012 use-before-init, SFX013
# redundant-store), a witnessed must fact plus the --all completeness
# contract, and `sidefx must --json` validating on every sample
# program.  lint exits 1 when it has findings, so only codes >= 2
# fail there.
must-smoke:
	dune build bin/sidefx.exe
	@echo "== must programs/mustmod_demo.mp"; \
	./_build/default/bin/sidefx.exe must programs/mustmod_demo.mp \
	  > must_smoke.tmp || exit 1; \
	cat must_smoke.tmp; \
	./_build/default/bin/sidefx.exe must programs/mustmod_demo.mp --jobs 4 \
	  > must_smoke4.tmp || exit 1; \
	cmp must_smoke.tmp must_smoke4.tmp || exit 1; \
	rm -f must_smoke.tmp must_smoke4.tmp
	@echo "== lint SFX012/SFX013"; \
	./_build/default/bin/sidefx.exe lint programs/mustmod_demo.mp \
	  --rules use-before-init,redundant-store > must_lint.tmp; \
	[ $$? -le 1 ] || exit 1; \
	cat must_lint.tmp; \
	grep -q 'SFX012' must_lint.tmp \
	  || { echo "must-smoke: SFX012 did not fire"; exit 1; }; \
	grep -q 'SFX013' must_lint.tmp \
	  || { echo "must-smoke: SFX013 did not fire"; exit 1; }; \
	rm -f must_lint.tmp
	@for code in SFX012 SFX013; do \
	  echo "== diag:$$code"; \
	  ./_build/default/bin/sidefx.exe explain programs/mustmod_demo.mp \
	    --fact diag:$$code || exit 1; \
	done
	@echo "== explain must:prime:slot"; \
	./_build/default/bin/sidefx.exe explain programs/mustmod_demo.mp \
	  --fact must:prime:slot || exit 1; \
	./_build/default/bin/sidefx.exe explain programs/mustmod_demo.mp \
	  --fact must:prime:slot --json \
	  | ./_build/default/bin/sidefx.exe json-validate || exit 1; \
	./_build/default/bin/sidefx.exe explain programs/mustmod_demo.mp --all \
	  || exit 1
	@for f in examples/*.mp programs/*.mp; do \
	  echo "== must --json $$f"; \
	  ./_build/default/bin/sidefx.exe must $$f --json \
	    | ./_build/default/bin/sidefx.exe json-validate || exit 1; \
	done

# Pinned perf-regression gate (reduced config, part of `make all`):
# word-ops growth per size doubling and jobs-4 overhead/identity.
bench-check:
	dune exec bench/bench_check.exe

bench-parallel:
	dune exec bench/bench_parallel.exe

bench-dataflow:
	dune exec bench/bench_dataflow.exe

bench-ptsto:
	dune exec bench/bench_ptsto.exe

bench-serve:
	dune exec bench/bench_serve.exe

examples:
	dune exec examples/quickstart.exe
	dune exec examples/parallelize.exe
	dune exec examples/optimizer.exe
	dune exec examples/nested_pascal.exe

.PHONY: all test test-force bench bench-quick bench-check bench-parallel bench-dataflow bench-serve bench-ptsto profile-smoke incremental-smoke parallel-smoke lint-smoke dataflow-smoke obs-smoke serve-smoke ptsto-smoke must-smoke examples
